(* rodlint: obs *)
(* rodlint: deterministic *)
(* rodproto: protocol — pause/drain/resume live migration; the role
   markers below bind the per-operator protocol state rodproto tracks *)

module Vec = Linalg.Vec
module Graph = Query.Graph
module Op = Query.Op

let obs_runs = Obs.counter ~help:"Simulator runs completed" "rod_sim_runs_total"

let obs_events =
  Obs.counter ~help:"Simulator events processed" "rod_sim_events_total"

let obs_migrations =
  Obs.counter ~help:"Operator migrations started" "rod_sim_migrations_total"

let obs_lost =
  Obs.counter ~help:"Work items destroyed by injected faults"
    "rod_sim_lost_total"

let obs_queue_depth =
  Obs.gauge ~help:"Event-queue depth after the last event pop"
    "rod_sim_event_queue_depth"

let obs_sink_latency =
  Obs.histogram ~help:"End-to-end latency of sink outputs (seconds)"
    "rod_sim_sink_latency_seconds"

type config = {
  net_delay : float;
  seed : int;
  warmup : float;
  shed_above : int option;
  faults : Fault.schedule;
}

let default_config =
  {
    net_delay = 1e-3;
    seed = 0x5eed;
    warmup = 0.;
    shed_above = None;
    faults = Fault.none;
  }

type dynamic_config = {
  interval : float;
  migration_delay : float;
  drain_delay : float;
  state_delay : int -> float;
  decide :
    time:float ->
    utilization:float array ->
    op_cpu:float array ->
    rates:float array ->
    assignment:int array ->
    (int * int) list;
}

type work_item = {
  op : int;
  input_idx : int;
  origin : float;
}

type node_state = {
  capacity : float;
  queue : work_item Queue.t;  (* rodproto: role input-queue *)
  mutable current : work_item option;
  mutable busy_time : float;  (* within the measurement window *)
  mutable busy_accum : float;  (* total, for controller utilization *)
}

type service_outcome = {
  cpu : float;  (* CPU seconds charged *)
  emitted : int;  (* output tuples *)
  pairs : int;  (* join candidate pairs examined (0 otherwise) *)
}

type event =
  | Deliver of work_item  (* routed to the operator's current node *)
  | Complete of int * work_item * service_outcome
  | Tick  (* dynamic controller wake-up *)
  | Handoff of int  (* drain window closed; rodproto: role drain-event *)
  | Migration_done of int  (* transfer finished; rodproto: role resume-event *)
  | Crash_fault of int * int array  (* node dies; switch to recovery *)

(* Sliding windows of a join operator: tuple timestamps per input side. *)
type join_state = {
  window : float;
  sides : float Queue.t array;
}

let consumers_with_index graph =
  let tbl = Hashtbl.create 64 in
  for j = 0 to Graph.n_ops graph - 1 do
    List.iteri
      (fun idx src ->
        let existing =
          match Hashtbl.find_opt tbl src with Some l -> l | None -> []
        in
        Hashtbl.replace tbl src ((j, idx) :: existing))
      (Graph.sources graph j)
  done;
  fun src ->
    match Hashtbl.find_opt tbl src with
    | Some l -> List.rev l
    | None -> []

let bernoulli rng p = Random.State.float rng 1. < p

(* Output count of a linear operator with the given selectivity. *)
let emit_count rng sel =
  let base = int_of_float (floor sel) in
  let frac = sel -. float_of_int base in
  base + if frac > 0. && bernoulli rng frac then 1 else 0

let binomial rng n p =
  if p <= 0. || n = 0 then 0
  else if p >= 1. then n
  else begin
    let count = ref 0 in
    for _ = 1 to n do
      if bernoulli rng p then incr count
    done;
    !count
  end

let run ~graph ~assignment ~caps ~arrivals ?(config = default_config) ?dynamic
    ~until () =
  let m = Graph.n_ops graph in
  let d = Graph.n_inputs graph in
  let n = Vec.dim caps in
  if Array.length assignment <> m then invalid_arg "Engine.run: assignment length";
  Array.iter
    (fun node ->
      if node < 0 || node >= n then invalid_arg "Engine.run: bad node index")
    assignment;
  if Array.length arrivals <> d then
    invalid_arg "Engine.run: arrivals per input stream expected";
  if until <= config.warmup then invalid_arg "Engine.run: until <= warmup";
  (match dynamic with
  | Some dc
    when dc.interval <= 0. || dc.migration_delay < 0. || dc.drain_delay < 0. ->
    invalid_arg "Engine.run: bad dynamic config"
  | Some _ | None -> ());
  Fault.validate ~n_nodes:n ~n_ops:m config.faults;
  let assignment = Array.copy assignment in (* rodproto: role deployed-assignment *)
  let dead = Array.make n false in
  let lost_count = ref 0 in
  let rng = Random.State.make [| config.seed |] in
  let consumers = consumers_with_index graph in
  let nodes =
    Array.init n (fun i ->
        { capacity = caps.(i); queue = Queue.create (); current = None;
          busy_time = 0.; busy_accum = 0. })
  in
  (* Dynamic load-distribution state: operators mid-migration buffer
     their input until the state transfer completes. *)
  let migrating = Array.make m false in (* rodproto: role paused *)
  let buffers = Array.init m (fun _ -> Queue.create ()) in (* rodproto: role buffer *)
  (* Destination of an in-flight migration; [-1] when not migrating.
     The assignment only flips at the drain-window handoff. *)
  let pending = Array.make m (-1) in (* rodproto: role pending *)
  let op_cpu_window = Array.make m 0. in
  let last_busy = Array.make n 0. in
  (* Per-stream arrival cursors for the controller's rate gauges, built
     only when a dynamic controller is attached. *)
  let arr_sorted =
    match dynamic with
    | None -> [||]
    | Some _ ->
      Array.map
        (fun times ->
          let a = Array.of_list times in
          Array.sort Float.compare a;
          a)
        arrivals
  in
  let rate_cursor = Array.make d 0 in
  let input_rate_gauges =
    match dynamic with
    | None -> [||]
    | Some _ ->
      Array.init d (fun k ->
          Obs.gauge
            ~labels:[ ("stream", string_of_int k) ]
            ~help:"Observed input rate over the last control interval (tuples/s)"
            "rod_sim_input_rate")
  in
  let migrations_count = ref 0 in
  let dropped_count = ref 0 in
  let joins = Hashtbl.create 4 in
  for j = 0 to m - 1 do
    match (Graph.op graph j).Op.kind with
    | Op.Join { window; _ } ->
      Hashtbl.add joins j
        { window; sides = [| Queue.create (); Queue.create () |] }
    | Op.Linear _ | Op.Var_selectivity _ -> ()
  done;
  let events = Event_queue.create () in
  let op_stats =
    Array.init m (fun j ->
        Sim_metrics.make_op_stat ~arity:(Op.arity (Graph.op graph j)))
  in
  let latencies = Sim_metrics.Samples.create () in
  (* Per-op service-time histograms, resolved once up front so the
     event loop never touches the registry lock. *)
  let op_service =
    Array.init m (fun j ->
        Obs.histogram
          ~labels:[ ("op", string_of_int j) ]
          ~help:"Service wall time per work item (seconds)"
          "rod_sim_op_service_seconds")
  in
  let migration_start = Array.make m 0. in
  let obs_event_count = ref 0 in
  let arrivals_count = ref 0 in
  let items_processed = ref 0 in
  let outputs_count = ref 0 in
  let backlog = ref 0 in
  let max_backlog = ref 0 in
  let measured t = t >= config.warmup && t <= until in
  (* Source tuples: deliver to every consumer of each input stream. *)
  Array.iteri
    (fun k times ->
      let readers = consumers (Graph.Sys_input k) in
      List.iter
        (fun t ->
          if t <= until then begin
            if measured t then incr arrivals_count;
            List.iter
              (fun (op, input_idx) ->
                Event_queue.push events ~time:t
                  (Deliver { op; input_idx; origin = t }))
              readers
          end)
        times)
    arrivals;
  (* Service of one item: CPU seconds and the number of output tuples
     (both decided when service begins). *)
  let service now item =
    let op = Graph.op graph item.op in
    match op.Op.kind with
    | Op.Linear { costs; selectivities } ->
      {
        cpu = costs.(item.input_idx);
        emitted = emit_count rng selectivities.(item.input_idx);
        pairs = 0;
      }
    | Op.Var_selectivity { cost; sel_now; _ } ->
      { cpu = cost; emitted = emit_count rng sel_now; pairs = 0 }
    | Op.Join { cost_per_pair; sel_per_pair; window = _ } ->
      let state = Hashtbl.find joins item.op in
      (* Tuples pair when their timestamps differ by at most window/2:
         both sides probe, each candidate pair is examined exactly once
         (when its later tuple arrives), and the pair rate is
         w * r_u * r_v — matching the load model of §6.2. *)
      let horizon = now -. (state.window /. 2.) in
      let expire q =
        while (not (Queue.is_empty q)) && Queue.peek q < horizon do
          ignore (Queue.pop q)
        done
      in
      Array.iter expire state.sides;
      let own = state.sides.(item.input_idx) in
      let opposite = state.sides.(1 - item.input_idx) in
      let pairs = Queue.length opposite in
      Queue.add now own;
      {
        cpu = cost_per_pair *. float_of_int pairs;
        emitted = binomial rng pairs sel_per_pair;
        pairs;
      }
  in
  let start_service node_idx now =
    let node = nodes.(node_idx) in
    match Queue.take_opt node.queue with
    | None -> ()
    | Some item ->
      let outcome = service now item in
      let capacity =
        node.capacity
        *. Fault.capacity_factor config.faults ~node:node_idx ~time:now
      in
      let wall = outcome.cpu /. capacity in
      if measured now then Obs.Histogram.observe op_service.(item.op) wall;
      let finish = now +. wall in
      (* Busy time clipped to the measurement window. *)
      let lo = Float.max now config.warmup and hi = Float.min finish until in
      if hi > lo then node.busy_time <- node.busy_time +. (hi -. lo);
      node.busy_accum <- node.busy_accum +. wall;
      node.current <- Some item;
      Event_queue.push events ~time:finish (Complete (node_idx, item, outcome))
  in
  (* Route to the operator's current node (re-routing in-flight tuples
     after a migration), or into its buffer while it migrates. *)
  let deliver now item =
    if migrating.(item.op) then Queue.add item buffers.(item.op)
    else begin
      let node_idx = assignment.(item.op) in
      if dead.(node_idx) then begin
        (* Only a broken recovery still routes here. *)
        if measured now then incr lost_count
      end
      else
      let node = nodes.(node_idx) in
      match config.shed_above with
      | Some limit when Queue.length node.queue >= limit ->
        if measured now then incr dropped_count
      | Some _ | None ->
        Queue.add item node.queue;
        if node.current = None then start_service node_idx now
    end;
    let total =
      Array.fold_left (fun acc nd -> acc + Queue.length nd.queue) 0 nodes
      + Array.fold_left (fun acc buf -> acc + Queue.length buf) 0 buffers
    in
    if total > !max_backlog then max_backlog := total
  in
  let emit now item count =
    let src = Graph.Op_output item.op in
    match consumers src with
    | [] ->
      (* Sink operator: outputs leave the system. *)
      if measured now then begin
        outputs_count := !outputs_count + count;
        for _ = 1 to count do
          Sim_metrics.Samples.add latencies (now -. item.origin);
          Obs.Histogram.observe obs_sink_latency (now -. item.origin)
        done
      end
    | readers ->
      for _ = 1 to count do
        List.iter
          (fun (op, input_idx) ->
            let delay =
              if assignment.(op) = assignment.(item.op) then 0.
              else config.net_delay +. Fault.extra_delay config.faults ~time:now
            in
            Event_queue.push events ~time:(now +. delay)
              (Deliver { op; input_idx; origin = item.origin }))
          readers
      done
  in
  (* Pause–drain–resume, step 1 (pause): the operator's queued work
     moves into its buffer (the in-service item, if any, finishes on the
     old node), new input buffers, and a drain window opens for in-flight
     tuples.  The assignment does NOT flip yet — that happens at the
     [Handoff] closing the drain window. *)
  let start_migration now op dest =
    if (not migrating.(op)) && dest <> assignment.(op) && dest >= 0 && dest < n
    then begin
      let drain = match dynamic with Some dc -> dc.drain_delay | None -> 0. in
      let old_queue = nodes.(assignment.(op)).queue in
      let kept = Queue.create () in
      Queue.iter
        (fun item ->
          if item.op = op then Queue.add item buffers.(op)
          else Queue.add item kept)
        old_queue;
      Queue.clear old_queue;
      Queue.transfer kept old_queue;
      migrating.(op) <- true;
      pending.(op) <- dest;
      incr migrations_count;
      migration_start.(op) <- now;
      Event_queue.push events ~time:(now +. drain) (Handoff op)
    end
  in
  let handle_tick now =
    match dynamic with
    | None -> ()
    | Some dc ->
      let utilization =
        Array.mapi
          (fun i node ->
            let used = (node.busy_accum -. last_busy.(i)) /. dc.interval in
            last_busy.(i) <- node.busy_accum;
            Float.min 1. used)
          nodes
      in
      let rates =
        Array.mapi
          (fun k times ->
            let c = ref rate_cursor.(k) in
            while !c < Array.length times && times.(!c) <= now do
              incr c
            done;
            let count = !c - rate_cursor.(k) in
            rate_cursor.(k) <- !c;
            let r = float_of_int count /. dc.interval in
            Obs.Gauge.set input_rate_gauges.(k) r;
            r)
          arr_sorted
      in
      let decisions =
        dc.decide ~time:now ~utilization ~op_cpu:(Array.copy op_cpu_window)
          ~rates
          ~assignment:(Array.copy assignment)
      in
      Array.fill op_cpu_window 0 m 0.;
      List.iter (fun (op, dest) -> start_migration now op dest) decisions;
      if now +. dc.interval <= until then
        Event_queue.push events ~time:(now +. dc.interval) Tick
  in
  let handle now = function
    | Deliver item -> deliver now item
    | Complete (node_idx, _item, _outcome) when dead.(node_idx) ->
      (* The node died while this item was in service: the work (and
         its outputs) perish with it. *)
      if measured now then incr lost_count
    | Complete (node_idx, item, outcome) ->
      nodes.(node_idx).current <- None;
      op_cpu_window.(item.op) <- op_cpu_window.(item.op) +. outcome.cpu;
      if measured now then begin
        incr items_processed;
        let stat = op_stats.(item.op) in
        stat.Sim_metrics.consumed.(item.input_idx) <-
          stat.Sim_metrics.consumed.(item.input_idx) + 1;
        stat.Sim_metrics.emitted.(item.input_idx) <-
          stat.Sim_metrics.emitted.(item.input_idx) + outcome.emitted;
        stat.Sim_metrics.cpu.(item.input_idx) <-
          stat.Sim_metrics.cpu.(item.input_idx) +. outcome.cpu;
        stat.Sim_metrics.pairs <- stat.Sim_metrics.pairs + outcome.pairs
      end;
      emit now item outcome.emitted;
      start_service node_idx now
    | Tick -> handle_tick now
    | Handoff op ->
      (* Drain window closed: flip ownership iff the destination is
         still alive, then transfer state.  A dead destination aborts
         the migration — the operator resumes wherever the (possibly
         recovery-remapped) assignment says it lives. *)
      let dest = pending.(op) in
      (* rodproto: gated-by Deploy.finish — deployed/replanned plans are gated *)
      if dest >= 0 && not dead.(dest) then assignment.(op) <- dest;
      let delay, state =
        match dynamic with
        | Some dc -> (dc.migration_delay, Float.max 0. (dc.state_delay op))
        | None -> (0., 0.)
      in
      Event_queue.push events ~time:(now +. delay +. state) (Migration_done op)
    | Migration_done op ->
      migrating.(op) <- false;
      pending.(op) <- -1;
      Obs.emit ~cat:"sim"
        ~args:
          [ ("op", string_of_int op); ("to", string_of_int assignment.(op)) ]
        ~ts:migration_start.(op)
        ~dur:(now -. migration_start.(op))
        "sim.migrate";
      let pending = buffers.(op) in
      let flush = Queue.create () in
      Queue.transfer pending flush;
      Queue.iter (fun item -> deliver now item) flush
    | Crash_fault (node_idx, recovery) ->
      dead.(node_idx) <- true;
      let node = nodes.(node_idx) in
      Obs.instant ~cat:"fault" ~ts:now
        ~args:[ ("node", string_of_int node_idx) ]
        "fault.crash";
      (* Queued work dies with the node; the in-service item (if any) is
         dropped when its Complete event fires. *)
      if measured now then lost_count := !lost_count + Queue.length node.queue;
      Queue.clear node.queue;
      let moved = ref 0 in
      Array.iteri
        (fun j dest -> if dest <> assignment.(j) then incr moved)
        recovery;
      Obs.instant ~cat:"fault" ~ts:now
        ~args:
          [
            ("node", string_of_int node_idx);
            ("ops_moved", string_of_int !moved);
          ]
        "fault.recovery";
      (* rodproto: gated-by Deploy.finish — recovery plans ship gated with the deployment *)
      Array.blit recovery 0 assignment 0 m
  in
  (match dynamic with
  | Some dc -> Event_queue.push events ~time:dc.interval Tick
  | None -> ());
  List.iter
    (fun (at, node, recovery) ->
      if at <= until then
        Event_queue.push events ~time:at (Crash_fault (node, recovery)))
    (Fault.crashes config.faults);
  let rec loop () =
    match Event_queue.peek_time events with
    | Some t when t <= until -> (
      match Event_queue.pop events with
      | Some (time, event) ->
        incr obs_event_count;
        handle time event;
        Obs.Gauge.set obs_queue_depth (float_of_int (Event_queue.length events));
        loop ()
      | None -> ())
    | Some _ | None -> ()
  in
  loop ();
  Obs.Counter.incr obs_runs;
  Obs.Counter.add obs_events !obs_event_count;
  Obs.Counter.add obs_migrations !migrations_count;
  Obs.Counter.add obs_lost !lost_count;
  Obs.emit ~cat:"sim"
    ~args:
      [
        ("arrivals", string_of_int !arrivals_count);
        ("outputs", string_of_int !outputs_count);
        ("events", string_of_int !obs_event_count);
      ]
    ~ts:0. ~dur:until "sim.run";
  Array.iter
    (fun node ->
      backlog := !backlog + Queue.length node.queue;
      if node.current <> None then incr backlog)
    nodes;
  Array.iter (fun buf -> backlog := !backlog + Queue.length buf) buffers;
  let span = until -. config.warmup in
  {
    Sim_metrics.duration = span;
    utilization = Array.map (fun node -> node.busy_time /. span) nodes;
    latencies;
    arrivals = !arrivals_count;
    items_processed = !items_processed;
    outputs = !outputs_count;
    backlog = !backlog;
    max_backlog = !max_backlog;
    op_stats;
    migrations = !migrations_count;
    dropped = !dropped_count;
    lost = !lost_count;
  }
