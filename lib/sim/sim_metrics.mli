(** Measurement plumbing for the simulator: the per-run statistics
    record.  The sample buffer lives in [rod.obs] now ({!Obs.Samples});
    the alias keeps existing [Sim_metrics.Samples] callers working. *)

module Samples = Obs.Samples

type op_stat = {
  consumed : int array;  (** Tuples processed, per input arc. *)
  emitted : int array;  (** Output tuples attributed to each input arc. *)
  cpu : float array;  (** CPU seconds spent, per input arc. *)
  mutable pairs : int;  (** Join candidate pairs examined (joins only). *)
}
(** Per-operator execution statistics — the raw material for measuring
    costs and selectivities from trial runs (§7.1). *)

type t = {
  duration : float; (* rodunits: sim-sec *)
      (** Measured interval (after warm-up). *)
  utilization : float array;  (** Per node: busy time / duration. *)
  latencies : Samples.t;  (** End-to-end latency of sink outputs. *)
  arrivals : int;  (** Source tuples injected (after warm-up). *)
  items_processed : int;  (** Work items completed (after warm-up). *)
  outputs : int;  (** Tuples emitted by sink operators. *)
  backlog : int;  (** Work items still queued at the end. *)
  max_backlog : int;  (** Peak total queued items. *)
  op_stats : op_stat array;  (** Index-aligned with the graph's operators. *)
  migrations : int;  (** Operator migrations started (dynamic runs). *)
  dropped : int;  (** Tuples shed at full queues (when shedding is on). *)
  lost : int;
      (** Work items destroyed by injected faults: queued or in service
          on a node when it crashed, or routed to a dead node (a broken
          recovery).  Zero on fault-free runs. *)
}

val make_op_stat : arity:int -> op_stat

val max_utilization : t -> float
(* rodunits: 1 *)

val mean_latency : t -> float
(* rodunits: sim-sec *)

val p95_latency : t -> float
(* rodunits: sim-sec *)

val pp : Format.formatter -> t -> unit
