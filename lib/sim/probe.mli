(** Feasibility probing — the paper's Borealis methodology (§7.1):
    "For each workload point, we run the system for a sufficiently long
    period and monitor the CPU utilization of all the nodes.  The system
    is deemed feasible if none of the nodes experience 100% utilization."

    We run the discrete-event engine at a constant rate point with
    deterministic arrivals and call the point feasible when every node's
    utilization stays below a threshold (default 98%). *)

type verdict = {
  feasible : bool;
  metrics : Sim_metrics.t;
}

val probe_point :
  ?duration:float ->
  ?util_threshold:float ->
  ?config:Engine.config ->
  graph:Query.Graph.t ->
  assignment:int array ->
  caps:Linalg.Vec.t ->
  rates:Linalg.Vec.t ->
  unit ->
  verdict
(** Simulate [duration] seconds (default 20) at the given constant input
    rates with one second of warm-up. *)

val feasible_fraction :
  ?duration:float ->
  ?util_threshold:float ->
  ?config:Engine.config ->
  graph:Query.Graph.t ->
  assignment:int array ->
  caps:Linalg.Vec.t ->
  points:Linalg.Vec.t array ->
  unit ->
  float
(* rodunits: 1 *)
(** Fraction of the given rate points that probe feasible — the measured
    counterpart of the analytic feasible-set ratio. *)

val simulate_traces :
  ?config:Engine.config ->
  ?rng:Random.State.t ->
  graph:Query.Graph.t ->
  assignment:int array ->
  caps:Linalg.Vec.t ->
  traces:Workload.Trace.t array ->
  unit ->
  Sim_metrics.t
(** Drive each input stream with (Poisson) arrivals following its trace
    and simulate until the shortest trace ends.  When [rng] is omitted,
    deterministic evenly-spaced arrivals are used instead. *)
