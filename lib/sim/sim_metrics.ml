module Samples = Obs.Samples

type op_stat = {
  consumed : int array;
  emitted : int array;
  cpu : float array;
  mutable pairs : int;
}

let make_op_stat ~arity =
  {
    consumed = Array.make arity 0;
    emitted = Array.make arity 0;
    cpu = Array.make arity 0.;
    pairs = 0;
  }

type t = {
  duration : float;
  utilization : float array;
  latencies : Samples.t;
  arrivals : int;
  items_processed : int;
  outputs : int;
  backlog : int;
  max_backlog : int;
  op_stats : op_stat array;
  migrations : int;
  dropped : int;
  lost : int;
}

let max_utilization t = Array.fold_left Float.max 0. t.utilization

let mean_latency t = Samples.mean t.latencies

let p95_latency t = Samples.percentile t.latencies 95.

let pp fmt t =
  Format.fprintf fmt
    "@[<v>simulated %.3gs: %d arrivals, %d items, %d outputs@,\
     utilization max %.1f%% %a@,\
     latency mean %.4gs p95 %.4gs max %.4gs (n=%d)@,\
     backlog end %d peak %d%t@]"
    t.duration t.arrivals t.items_processed t.outputs
    (100. *. max_utilization t)
    Linalg.Vec.pp t.utilization (mean_latency t) (p95_latency t)
    (Samples.max_value t.latencies)
    (Samples.count t.latencies) t.backlog t.max_backlog (fun fmt ->
      if t.lost > 0 then Format.fprintf fmt "@,lost to faults %d" t.lost)
