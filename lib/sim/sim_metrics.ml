module Samples = struct
  type t = {
    mutable data : float array;
    mutable stored : int;
    mutable count : int;
    mutable sum : float;
    mutable max_value : float;
    capacity_limit : int;
  }

  let create ?(capacity_limit = 1 lsl 20) () =
    {
      data = [||];
      stored = 0;
      count = 0;
      sum = 0.;
      max_value = neg_infinity;
      capacity_limit;
    }

  let add t x =
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    if x > t.max_value then t.max_value <- x;
    if t.stored < t.capacity_limit then begin
      if t.stored = Array.length t.data then begin
        let fresh = Array.make (max 1024 (2 * Array.length t.data)) 0. in
        Array.blit t.data 0 fresh 0 t.stored;
        t.data <- fresh
      end;
      t.data.(t.stored) <- x;
      t.stored <- t.stored + 1
    end

  let count t = t.count

  let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

  let max_value t = if t.count = 0 then 0. else t.max_value

  let to_array t = Array.sub t.data 0 t.stored

  let percentile t p =
    if t.stored = 0 then 0. else Workload.Stats.percentile (to_array t) p
end

type op_stat = {
  consumed : int array;
  emitted : int array;
  cpu : float array;
  mutable pairs : int;
}

let make_op_stat ~arity =
  {
    consumed = Array.make arity 0;
    emitted = Array.make arity 0;
    cpu = Array.make arity 0.;
    pairs = 0;
  }

type t = {
  duration : float;
  utilization : float array;
  latencies : Samples.t;
  arrivals : int;
  items_processed : int;
  outputs : int;
  backlog : int;
  max_backlog : int;
  op_stats : op_stat array;
  migrations : int;
  dropped : int;
  lost : int;
}

let max_utilization t = Array.fold_left Float.max 0. t.utilization

let mean_latency t = Samples.mean t.latencies

let p95_latency t = Samples.percentile t.latencies 95.

let pp fmt t =
  Format.fprintf fmt
    "@[<v>simulated %.3gs: %d arrivals, %d items, %d outputs@,\
     utilization max %.1f%% %a@,\
     latency mean %.4gs p95 %.4gs max %.4gs (n=%d)@,\
     backlog end %d peak %d%t@]"
    t.duration t.arrivals t.items_processed t.outputs
    (100. *. max_utilization t)
    Linalg.Vec.pp t.utilization (mean_latency t) (p95_latency t)
    (Samples.max_value t.latencies)
    (Samples.count t.latencies) t.backlog t.max_backlog (fun fmt ->
      if t.lost > 0 then Format.fprintf fmt "@,lost to faults %d" t.lost)
