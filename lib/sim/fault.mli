(** Deterministic fault schedules for the simulation engines.

    A schedule is a plain list of fault events that {!Engine.run} (and
    the semantic [Spe.Dist_executor]) consume through their configs.
    The engines interpret the events; building seeded schedules (and the
    recovery assignments crashes carry) is the job of the higher-level
    [Chaos] library, which can see the placement stack.  Keeping the
    type here lets both engines share one fault vocabulary without
    depending on it.

    All randomness lives in schedule {e generation}: a schedule in hand
    is pure data, so replaying it is bit-reproducible. *)

type event =
  | Crash of {
      node : int;  (** The node that dies. *)
      at : float;  (** Crash instant, seconds. *)
      recovery : int array;
          (** The full post-crash assignment (operator index to node
              index, in the {e original} node indexing).  Work queued or
              in service on the dead node at [at] is lost; afterwards
              every operator is routed per [recovery].  A recovery that
              still maps operators to a dead node models a broken
              recovery path: those operators' tuples are counted as
              lost — the oracle layer flags this. *)
    }
  | Slowdown of {
      node : int;
      from_ : float;
      until_ : float;  (** Half-open window [[from_, until_)). *)
      factor : float;
          (** Capacity multiplier in [(0, 1]]; applied at service start
              (a service crossing the window boundary keeps the rate it
              started with). *)
    }
  | Jitter of {
      from_ : float;
      until_ : float;
      extra : float;
          (** Additional one-way network delay, seconds, added to every
              inter-node hop whose tuple is emitted inside the
              window. *)
    }

type schedule = event list

val none : schedule

val validate : n_nodes:int -> n_ops:int -> schedule -> unit
(** @raise Invalid_argument on out-of-range nodes, non-positive or > 1
    slowdown factors, negative times/extras, inverted windows, a
    recovery of the wrong length or with out-of-range nodes, duplicate
    crashes of one node, or a schedule crashing every node. *)

val capacity_factor : schedule -> node:int -> time:float -> float
(* rodunits: time:sim-sec -> 1 *)
(** Product of the factors of every slowdown window covering
    [(node, time)]; [1.] when none does. *)

val extra_delay : schedule -> time:float -> float
(* rodunits: time:sim-sec -> sim-sec *)
(** Sum of the extras of every jitter window covering [time]. *)

val crashes : schedule -> (float * int * int array) list
(** [(at, node, recovery)] triples, ascending by time (stable for equal
    times). *)

val pp : Format.formatter -> schedule -> unit
(** One line per event, in time order — stable, for logs and
    determinism checks. *)
