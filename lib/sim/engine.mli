(** A discrete-event simulator of a distributed stream-processing
    engine — the substrate standing in for the Borealis prototype.

    Model (matching the paper's assumptions in §2.1):
    - each node is a serial CPU of a given capacity; processing a tuple
      whose operator cost is [w] CPU-seconds occupies the node for
      [w / capacity] wall-seconds; work items queue FIFO per node;
    - the interconnect has ample bandwidth; a tuple crossing nodes is
      delayed by a fixed [net_delay] but never queues;
    - linear operators emit output tuples according to their
      selectivity (Bernoulli draws, expectation = selectivity);
    - time-window joins keep real sliding windows of tuple timestamps:
      an arriving tuple is matched against the opposite side's tuples
      whose timestamps are within [window/2] (cost [cost_per_pair] per
      candidate pair, Bernoulli [sel] per output), so each candidate
      pair is examined exactly once and the pair rate is
      [window * r_u * r_v] — the load model of §6.2;
    - every tuple carries the timestamp of the source tuple that caused
      it; the latency of a sink output is completion time minus that
      origin — the "latency of individual results" the paper optimizes.

    Runs are deterministic given the config's [seed]. *)

type config = {
  net_delay : float; (* rodunits: sim-sec *)
      (** One-way network latency, seconds (default 1 ms). *)
  seed : int;  (** Selectivity/join randomness. *)
  warmup : float; (* rodunits: sim-sec *)
      (** Statistics ignore events before this time. *)
  shed_above : int option;
      (** Load shedding: when set, a tuple arriving at a node whose
          queue already holds this many items is dropped (and counted),
          trading answer completeness for bounded latency — the standard
          overload alternative to placement that the paper's related
          work discusses.  [None] (default) = lossless queues. *)
  faults : Fault.schedule;
      (** Injected faults (default none).  Crashes kill a node — its
          queued and in-service work is lost, the assignment switches to
          the event's recovery, and anything later routed to the dead
          node is lost too.  Slowdowns scale a node's capacity inside
          their window (sampled at service start); jitter adds to
          [net_delay] for hops emitted inside its window.  A schedule is
          pure data, so runs stay deterministic given [seed]. *)
}

val default_config : config

type dynamic_config = {
  interval : float; (* rodunits: sim-sec *)
      (** Controller wake-up period, seconds. *)
  migration_delay : float; (* rodunits: sim-sec *)
      (** Base pause while an operator's state moves between nodes (the
          paper reports "a few hundred milliseconds" base overhead in
          Borealis); the operator processes nothing during the pause and
          its input queues up. *)
  drain_delay : float; (* rodunits: sim-sec *)
      (** Drain window between the pause and the handoff: the old node
          keeps ownership while in-flight tuples settle into the
          operator's buffer.  Ownership flips only when the window
          closes — and only if the destination is still alive; a dead
          destination aborts the migration and the operator resumes
          wherever the (possibly recovery-remapped) assignment says. *)
  state_delay : int -> float;
      (** Per-operator state-transfer seconds added to
          [migration_delay] after the handoff (negative values are
          clamped to [0]) — e.g. {!Statesize} in [rod.dynamic], so a
          windowed join pauses longer than a stateless filter. *)
  decide :
    time:float ->
    utilization:float array ->
    op_cpu:float array ->
    rates:float array ->
    assignment:int array ->
    (int * int) list;
      (** Called every [interval] with per-node utilization over the
          last interval, per-operator CPU seconds over the last
          interval, per-input-stream observed arrival rates (tuples/s
          over the last interval, also published as the
          [rod_sim_input_rate] gauges) and the current assignment
          (read-only copies); returns [(operator, destination)]
          migrations to start.  Operators already migrating are
          skipped. *)
}
(** Optional dynamic load distribution running {e inside} the
    simulation — the reactive scheme the paper argues cannot keep up
    with short-term bursts.  Each migration is a pause–drain–resume:
    tuples addressed to a migrating operator buffer from the pause
    until the resume, the drain window closes with a handoff flipping
    ownership, the state transfer charges
    [migration_delay + state_delay op], and the resume flushes the
    buffer to the operator's current node. *)

val run :
  graph:Query.Graph.t ->
  assignment:int array ->
  caps:Linalg.Vec.t ->
  arrivals:float list array ->
  ?config:config ->
  ?dynamic:dynamic_config ->
  until:float ->
  unit ->
  Sim_metrics.t
(* rodunits: until:sim-sec -> _ *)
(** Simulate the placed graph fed by per-input-stream arrival timestamp
    lists (ascending, as produced by {!Workload.Generators}), up to
    absolute time [until].  Work still queued at [until] is reported as
    backlog. *)
