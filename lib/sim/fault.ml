type event =
  | Crash of {
      node : int;
      at : float;
      recovery : int array;
    }
  | Slowdown of {
      node : int;
      from_ : float;
      until_ : float;
      factor : float;
    }
  | Jitter of {
      from_ : float;
      until_ : float;
      extra : float;
    }

type schedule = event list

let none = []

let time_of = function
  | Crash { at; _ } -> at
  | Slowdown { from_; _ } -> from_
  | Jitter { from_; _ } -> from_

let validate ~n_nodes ~n_ops schedule =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let crashed = Array.make n_nodes false in
  List.iter
    (fun ev ->
      match ev with
      | Crash { node; at; recovery } ->
        if node < 0 || node >= n_nodes then fail "Fault: crash of node %d" node;
        if at < 0. then fail "Fault: crash at negative time %g" at;
        if crashed.(node) then fail "Fault: node %d crashes twice" node;
        crashed.(node) <- true;
        if Array.length recovery <> n_ops then
          fail "Fault: recovery length %d, expected %d" (Array.length recovery)
            n_ops;
        Array.iter
          (fun i ->
            if i < 0 || i >= n_nodes then
              fail "Fault: recovery maps to node %d" i)
          recovery
      | Slowdown { node; from_; until_; factor } ->
        if node < 0 || node >= n_nodes then
          fail "Fault: slowdown of node %d" node;
        if from_ < 0. || until_ < from_ then
          fail "Fault: bad slowdown window [%g, %g)" from_ until_;
        if factor <= 0. || factor > 1. then
          fail "Fault: slowdown factor %g outside (0, 1]" factor
      | Jitter { from_; until_; extra } ->
        if from_ < 0. || until_ < from_ then
          fail "Fault: bad jitter window [%g, %g)" from_ until_;
        if extra < 0. then fail "Fault: negative jitter %g" extra)
    schedule;
  if n_nodes > 0 && Array.for_all Fun.id crashed then
    fail "Fault: schedule crashes all %d nodes" n_nodes

let capacity_factor schedule ~node ~time =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Slowdown { node = n; from_; until_; factor }
        when n = node && time >= from_ && time < until_ ->
        acc *. factor
      | Slowdown _ | Crash _ | Jitter _ -> acc)
    1. schedule

let extra_delay schedule ~time =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Jitter { from_; until_; extra } when time >= from_ && time < until_ ->
        acc +. extra
      | Jitter _ | Crash _ | Slowdown _ -> acc)
    0. schedule

let crashes schedule =
  List.filter_map
    (function
      | Crash { node; at; recovery } -> Some (at, node, recovery)
      | Slowdown _ | Jitter _ -> None)
    schedule
  |> List.stable_sort (fun (a, _, _) (b, _, _) -> Float.compare a b)

let pp fmt schedule =
  let sorted =
    List.stable_sort (fun a b -> Float.compare (time_of a) (time_of b)) schedule
  in
  Format.pp_open_vbox fmt 0;
  if sorted = [] then Format.pp_print_string fmt "no faults";
  List.iteri
    (fun i ev ->
      if i > 0 then Format.pp_print_cut fmt ();
      match ev with
      | Crash { node; at; recovery } ->
        Format.fprintf fmt "t=%-8.3f crash node %d, recovery [%s]" at node
          (String.concat " "
             (Array.to_list (Array.map string_of_int recovery)))
      | Slowdown { node; from_; until_; factor } ->
        Format.fprintf fmt "t=%-8.3f slowdown node %d to %g%% until %.3f" from_
          node (100. *. factor) until_
      | Jitter { from_; until_; extra } ->
        Format.fprintf fmt "t=%-8.3f jitter +%gs until %.3f" from_ extra until_)
    sorted;
  Format.pp_close_box fmt ()
