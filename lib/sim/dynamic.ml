let balance ?(imbalance_threshold = 0.2) ?(max_moves_per_tick = 1) () ~time
    ~utilization ~op_cpu ~rates ~assignment =
  ignore time;
  ignore rates;
  let n = Array.length utilization in
  if n < 2 then []
  else begin
    let hottest = ref 0 and coolest = ref 0 in
    for i = 1 to n - 1 do
      if utilization.(i) > utilization.(!hottest) then hottest := i;
      if utilization.(i) < utilization.(!coolest) then coolest := i
    done;
    if utilization.(!hottest) -. utilization.(!coolest) <= imbalance_threshold
    then []
    else begin
      (* Hottest operators of the overloaded node first. *)
      let candidates = ref [] in
      Array.iteri
        (fun op node ->
          if node = !hottest && op_cpu.(op) > 0. then
            candidates := (op_cpu.(op), op) :: !candidates)
        assignment;
      let sorted = List.sort (fun (a, _) (b, _) -> compare b a) !candidates in
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | (_, op) :: rest -> (op, !coolest) :: take (k - 1) rest
      in
      take max_moves_per_tick sorted
    end
  end

let config ?(interval = 1.) ?(migration_delay = 0.3) ?(drain_delay = 0.05)
    ?(state_delay = fun _ -> 0.) ?imbalance_threshold ?max_moves_per_tick () =
  {
    Engine.interval;
    migration_delay;
    drain_delay;
    state_delay;
    decide = balance ?imbalance_threshold ?max_moves_per_tick ();
  }
