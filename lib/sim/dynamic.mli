(** Ready-made controllers for {!Engine}'s dynamic load distribution —
    the reactive alternative the paper contrasts static resilient
    placement against (§1: migration overhead is "on the order of a few
    hundred milliseconds", which is why reacting to short bursts is a
    losing game). *)

val balance :
  ?imbalance_threshold:float ->
  ?max_moves_per_tick:int ->
  unit ->
  time:float ->
  utilization:float array ->
  op_cpu:float array ->
  rates:float array ->
  assignment:int array ->
  (int * int) list
(** A greedy utilization balancer: when the most loaded node exceeds the
    least loaded by more than [imbalance_threshold] (default 0.2 of
    capacity), move the hottest operators of the most loaded node toward
    the least loaded one — at most [max_moves_per_tick] (default 1)
    moves per wake-up, mirroring conservative production balancers.
    Ignores the observed [rates] (a margin-aware controller lives in
    [rod.dynamic]). *)

val config :
  ?interval:float ->
  ?migration_delay:float ->
  ?drain_delay:float ->
  ?state_delay:(int -> float) ->
  ?imbalance_threshold:float ->
  ?max_moves_per_tick:int ->
  unit ->
  Engine.dynamic_config
(** The balancer packaged as an engine config.  Defaults: 1 s control
    interval, 300 ms migration pause (the paper's "few hundred
    milliseconds"), 50 ms drain window, zero per-operator state
    transfer. *)
