(* rodlint: hot *)
(* rodlint: obs *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat

let obs_runs = Obs.counter ~help:"ROD placements computed" "rod_place_runs_total"

let obs_class1 =
  Obs.counter
    ~labels:[ ("class", "1") ]
    ~help:"Operators assigned, by candidate class" "rod_place_ops_total"

let obs_class2 = Obs.counter ~labels:[ ("class", "2") ] "rod_place_ops_total"

type class_one_policy =
  | Max_plane_distance
  | First_fit
  | Min_new_arcs of Query.Graph.t

let order_operators problem =
  let m = Problem.n_ops problem in
  let norms = Array.init m (fun j -> Vec.norm2 (Problem.op_load problem j)) in
  let order = List.init m (fun j -> j) in
  (* Stable sort keeps index order among equal norms, making the
     algorithm fully deterministic. *)
  List.stable_sort (fun a b -> Float.compare norms.(b) norms.(a)) order

(* Operator adjacency from the query graph, for the Min_new_arcs
   policy. *)
let neighbor_table graph m =
  if Query.Graph.n_ops graph <> m then
    invalid_arg "Rod_algorithm: policy graph has a different operator count";
  let neighbors = Array.make m [] in
  List.iter
    (fun (src, dst) ->
      match src with
      | Query.Graph.Op_output u ->
        neighbors.(u) <- dst :: neighbors.(u);
        neighbors.(dst) <- u :: neighbors.(dst)
      | Query.Graph.Sys_input _ -> ())
    (Query.Graph.arcs graph);
  neighbors

type decision = {
  op : int;
  rank : int;
  norm : float;
  node : int;
  class_one : bool;
  class_one_count : int;
  plane_distance : float;
}

let place_internal ?lower ?(policy = Max_plane_distance) ?trace ~fixed problem =
  let n = Problem.n_nodes problem in
  let m = Problem.n_ops problem in
  let d = Problem.dim problem in
  if Array.length fixed <> m then
    invalid_arg "Rod_algorithm: fixed array length <> operator count";
  Array.iter
    (function
      | Some node when node < 0 || node >= n ->
        invalid_arg "Rod_algorithm: fixed operator on a bad node"
      | Some _ | None -> ())
    fixed;
  let l = Problem.total_coefficients problem in
  let caps = problem.Problem.caps in
  let c_total = Problem.total_capacity problem in
  let lower_norm =
    match lower with
    | None -> Vec.zeros d
    | Some b ->
      if Vec.dim b <> d then invalid_arg "Rod_algorithm: lower bound dimension";
      Problem.normalized_point problem b
  in
  let neighbors =
    match policy with
    | Min_new_arcs graph -> Some (neighbor_table graph m)
    | Max_plane_distance | First_fit -> None
  in
  let ln = Mat.zeros n d in
  let assignment = Array.make m (-1) in
  (* Pinned operators contribute their load up front. *)
  Array.iteri
    (fun j pin ->
      match pin with
      | Some node ->
        assignment.(j) <- node;
        Vec.add_inplace (Problem.op_load problem j) (Mat.row ln node)
      | None -> ())
    fixed;
  let new_cut_arcs j i =
    match neighbors with
    | None -> 0
    | Some tbl ->
      List.fold_left
        (fun acc u ->
          if assignment.(u) >= 0 && assignment.(u) <> i then acc + 1 else acc)
        0 tbl.(j)
  in
  (* The inner loop scores every (operator, node) pair, so it must not
     allocate: the candidate weight vector
     w_k = (ln_{ik} + lo_{jk}) / l_k / (C_i / C_T) is never
     materialized — the class test (all w_k <= 1) and the plane distance
     (1 - w . lower_norm) / |w| are accumulated per axis in one fused
     pass, with the float accumulators kept in a scratch float array
     (unboxed stores) shared across candidates.  Arithmetic and
     accumulation order match the old Vec-based formulation exactly, so
     placements are bit-identical. *)
  (* acc.(0): |w|^2; acc.(1): w . lower_norm; acc.(2): the resulting
     plane distance (a float-array slot, so no result boxing). *)
  let acc = Array.make 3 0. in
  let below = ref true in
  let trace_scratch =
    match trace with Some _ -> Some (Vec.zeros d) | None -> None
  in
  (* The capacity ratio C_i / C_T depends only on the node, so it is
     divided out once here instead of once per (operator, node) pair. *)
  let cap_ratios = Array.init n (fun i -> caps.(i) /. c_total) in
  let candidate_score_exact j i =
    let lo_j = Problem.op_load problem j in
    let ln_i = Mat.row ln i in
    let cap_ratio = cap_ratios.(i) in
    below := true;
    acc.(0) <- 0.;
    acc.(1) <- 0.;
    for k = 0 to d - 1 do
      let wk = (ln_i.(k) +. lo_j.(k)) /. l.(k) /. cap_ratio in
      if not (wk <= 1.) then below := false;
      acc.(0) <- acc.(0) +. (wk *. wk);
      acc.(1) <- acc.(1) +. (wk *. lower_norm.(k))
    done;
    let norm = sqrt acc.(0) in
    acc.(2) <- (if norm > 0. then (1. -. acc.(1)) /. norm else infinity)
  in
  (* With the lower corner at the origin (the default), w . lower_norm
     accumulates exactly +0. for any finite w, so the common case drops
     that term from the fused pass and the plane distance collapses to
     1/|w|.  A non-finite |w|^2 means some w_k overflowed or went nan;
     the old loop would have poisoned acc.(1) through wk *. 0. = nan, so
     that (rare) candidate reruns the exact two-term loop and scores
     stay bit-identical either way. *)
  let lower_zero = Array.for_all (fun x -> Float.equal x 0.) lower_norm in
  let candidate_score j i =
    if not lower_zero then candidate_score_exact j i
    else begin
      let lo_j = Problem.op_load problem j in
      let ln_i = Mat.row ln i in
      let cap_ratio = cap_ratios.(i) in
      below := true;
      acc.(0) <- 0.;
      for k = 0 to d - 1 do
        let wk = (ln_i.(k) +. lo_j.(k)) /. l.(k) /. cap_ratio in
        if not (wk <= 1.) then below := false;
        acc.(0) <- acc.(0) +. (wk *. wk)
      done;
      if Float.is_finite acc.(0) then begin
        let norm = sqrt acc.(0) in
        acc.(2) <- (if norm > 0. then 1. /. norm else infinity)
      end
      else candidate_score_exact j i
    end
  in
  (* Class tallies are kept in plain locals inside the hot loop and
     flushed to the registry once per placement. *)
  let class1_total = ref 0 in
  let class2_total = ref 0 in
  (* Min_new_arcs collects every class-one candidate for its
     arc-count tie-break.  Kept in preallocated index/distance scratch
     arrays (reset per operator) so the scoring loop stays
     allocation-free; the tie-break itself runs once per operator,
     outside the loop. *)
  let one_scored_idx = Array.make n 0 in
  let one_scored_dist = Array.make n 0. in
  let one_scored_len = ref 0 in
  let assign j =
    let class_one_count = ref 0 in
    let first_one = ref (-1) in
    let best_one = ref (-1) in
    let best_one_dist = ref neg_infinity in
    one_scored_len := 0;
    let best_two = ref (-1) in
    let best_two_dist = ref neg_infinity in
    for i = n - 1 downto 0 do
      candidate_score j i;
      let dist = acc.(2) in
      if !below then begin
        incr class_one_count;
        first_one := i;
        (match policy with
        | Min_new_arcs _ ->
          one_scored_idx.(!one_scored_len) <- i;
          one_scored_dist.(!one_scored_len) <- dist;
          incr one_scored_len
        | Max_plane_distance | First_fit -> ());
        (* >= so that ties resolve to the lowest index (loop descends). *)
        if dist >= !best_one_dist then begin
          best_one := i;
          best_one_dist := dist
        end
      end
      else if dist >= !best_two_dist then begin
        best_two := i;
        best_two_dist := dist
      end
    done;
    let target =
      if !class_one_count = 0 then !best_two
      else
        match policy with
        | First_fit -> !first_one
        | Max_plane_distance -> !best_one
        | Min_new_arcs _ -> (
          let scored =
            List.init !one_scored_len (fun k ->
                let i = one_scored_idx.(k) in
                (new_cut_arcs j i, -.one_scored_dist.(k), i))
          in
          let by_arcs_dist_index (a1, d1, i1) (a2, d2, i2) =
            let c = Int.compare a1 a2 in
            if c <> 0 then c
            else
              let c = Float.compare d1 d2 in
              if c <> 0 then c else Int.compare i1 i2
          in
          match List.sort by_arcs_dist_index scored with
          | (_, _, i) :: _ -> i
          | [] -> assert false)
    in
    assignment.(j) <- target;
    if !class_one_count > 0 then incr class1_total else incr class2_total;
    Vec.add_inplace (Problem.op_load problem j) (Mat.row ln target);
    (match (trace, trace_scratch) with
    | Some log, Some w_after ->
      Vec.init_into w_after (fun k ->
          Mat.get ln target k /. l.(k) /. (caps.(target) /. c_total));
      log :=
        {
          op = j;
          rank = List.length !log;
          norm = Vec.norm2 (Problem.op_load problem j);
          node = target;
          class_one = !class_one_count > 0;
          class_one_count = !class_one_count;
          plane_distance =
            Feasible.Geometry.plane_distance_from ~point:lower_norm w_after;
        }
        :: !log
    | _ -> ())
  in
  Obs.with_span ~cat:"place"
    ~args:[ ("ops", string_of_int m); ("nodes", string_of_int n) ]
    "rod.place"
    (fun () ->
      let order =
        Obs.with_span ~cat:"place" "rod.order" (fun () ->
            order_operators problem)
      in
      Obs.with_span ~cat:"place" "rod.assign" (fun () ->
          List.iter (fun j -> if fixed.(j) = None then assign j) order);
      Obs.Counter.incr obs_runs;
      Obs.Counter.add obs_class1 !class1_total;
      Obs.Counter.add obs_class2 !class2_total;
      assignment)

let place ?lower ?policy problem =
  place_internal ?lower ?policy
    ~fixed:(Array.make (Problem.n_ops problem) None)
    problem

let place_traced ?lower ?policy problem =
  let log = ref [] in
  let assignment =
    place_internal ?lower ?policy ~trace:log
      ~fixed:(Array.make (Problem.n_ops problem) None)
      problem
  in
  (assignment, List.rev !log)

let pp_trace fmt decisions =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun decision ->
      Format.fprintf fmt
        "%3d. o%-4d (|l|=%.3g) -> node %d  %s(%d free)  r after = %.3f@,"
        decision.rank decision.op decision.norm decision.node
        (if decision.class_one then "class I " else "class II")
        decision.class_one_count decision.plane_distance)
    decisions;
  Format.fprintf fmt "@]"

let place_incremental ?lower ?policy ~fixed problem =
  place_internal ?lower ?policy ~fixed problem

let plan ?lower ?policy problem = Plan.make problem (place ?lower ?policy problem)
