(** Plan polishing by hill climbing on the feasible-set objective.

    ROD is greedy and leaves a few percent of feasible volume on the
    table (TBLOPT measures ~5% against the exhaustive optimum).  This
    module climbs from any starting assignment using single-operator
    relocations plus pairwise exchanges (which escape most single-move
    local optima), scoring candidates on a shared quasi-Monte Carlo
    sample so comparisons are exact and incremental (the same machinery
    as {!Optimal}).  It turns ROD into an anytime algorithm: the paper
    suggests resilient placement as a good {e initial} plan, and this is
    the natural refinement step.

    Complexity: a relocation sweep examines every (operator, other node)
    move at [O(samples)] each; swap sweeps are [O(m^2 * samples)] and
    run only when relocations are exhausted.  The search ends after a
    pass that finds no improving move. *)

type outcome = {
  assignment : int array;
  ratio : float;  (** Feasible fraction of the shared QMC sample. *)
  moves : int;  (** Accepted moves. *)
  passes : int;  (** Full sweeps performed (including the final, quiet one). *)
}

val improve :
  ?pool:Parallel.Pool.t ->
  ?samples:int ->
  ?max_passes:int ->
  Problem.t ->
  int array ->
  outcome
(** First-improvement hill climbing (defaults: 2048 samples, at most 20
    passes).  The result's ratio is measured on the same sample as
    {!Optimal.ratio_of_assignment}, so values are directly comparable.
    The scorer's sample dimension is sharded across [pool] (default
    {!Parallel.Pool.global}); move acceptance stays sequential and the
    per-chunk reductions are exact, so the outcome — assignment, ratio,
    move and pass counts — is identical for every pool size. *)

val rod_polished :
  ?pool:Parallel.Pool.t ->
  ?samples:int ->
  ?max_passes:int ->
  Problem.t ->
  outcome
(** ROD followed by {!improve}. *)
