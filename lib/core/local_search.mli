(** Plan polishing by hill climbing on the feasible-set objective.

    ROD is greedy and leaves a few percent of feasible volume on the
    table (TBLOPT measures ~5% against the exhaustive optimum).  This
    module climbs from any starting assignment using single-operator
    relocations plus pairwise exchanges (which escape most single-move
    local optima), scoring candidates on a shared quasi-Monte Carlo
    sample so comparisons are exact and incremental (the same machinery
    as {!Optimal}).  It turns ROD into an anytime algorithm: the paper
    suggests resilient placement as a good {e initial} plan, and this is
    the natural refinement step.

    Candidate evaluation is {e read-only and fused}: a relocation sweep
    scores all [n] targets of an operator in one pass over the sample
    dimension via {!relocation_gains} (one pool dispatch per operator,
    not one per candidate), and swap sweeps run against a per-operator
    batch whose candidate-sample list is pruned by the per-sample
    violation counts.  The scorer state is only written when a move is
    actually applied ({!move}).  A sample with [v] saturated nodes can
    change feasibility only if [v <= 1] under a relocation or [v <= 2]
    under a swap (load contributions are nonnegative by the
    {!Problem.t} invariants), which is what the skip index exploits.

    Complexity: a relocation sweep is [O(m * (samples + active * n))]
    where [active] counts samples with [v <= 1]; swap sweeps are
    [O(m * samples + m^2 * candidates)] with [candidates] the usually
    tiny per-batch gain-candidate list, and run only when relocations
    are exhausted.  The search ends after a pass that finds no
    improving move. *)

type outcome = {
  assignment : int array;
  ratio : float; (* rodunits: 1 *)
      (** Feasible fraction of the shared QMC sample. *)
  moves : int;  (** Accepted moves. *)
  passes : int;  (** Full sweeps performed (including the final, quiet one). *)
}

(** {1 Incremental scorer}

    The shared-sample scoring state: per-operator load contributions on
    the QMC sample, per-node accumulated loads, per-sample violation
    counts and the running feasible total.  Exposed so equivalence
    tests (and future replanners) can drive the primitives directly. *)

type scorer

val make_scorer :
  ?pool:Parallel.Pool.t -> Problem.t -> int array -> int -> scorer
(** [make_scorer problem assignment samples] builds the scorer for the
    given starting assignment.  The array is {e shared}, not copied:
    the scorer reads it to resolve an operator's current node, so a
    caller applying {!move} must update the same array accordingly
    ({!improve} does).  The sample table is generated in one fused pass
    (the QMC points are never materialized).  Defaults to the global
    pool. *)

val feasible : scorer -> int
(** Number of feasible samples under the current state. *)

val n_samples : scorer -> int

val move : scorer -> int -> from_node:int -> to_node:int -> unit
(** Apply operator [j]'s relocation, updating node loads, violation
    counts and the feasible total incrementally (two shifts, sharded
    over the pool; exact integer reduction). *)

val gain : scorer -> int -> to_node:int -> int
(** [gain scorer j ~to_node] is the feasibility delta a
    [move scorer j ~from_node:(current) ~to_node] would produce —
    bit-identical to performing the move and subtracting the feasible
    counts — computed without writing any scorer state.  [0] when
    [to_node] is [j]'s current node. *)

val swap_gain : scorer -> int -> int -> int
(** [swap_gain scorer j1 j2] is the feasibility delta of exchanging the
    two operators between their nodes (the four-shift sequence of the
    swap sweep), read-only.  Raises [Invalid_argument] when they share
    a node. *)

val relocation_gains : scorer -> int -> int array
(** Fused kernel: [gain scorer j ~to_node:i] for every node [i] in one
    pass over the samples ([0] at [j]'s current node).  The returned
    array is scorer-owned scratch, valid until the next call. *)

val relocation_positive_bound : scorer -> int -> int
(** Upper bound on [Array.fold_left max 0 (relocation_gains scorer j)]:
    the number of samples whose feasibility could possibly flip to
    feasible under any relocation of [j].  [0] proves no improving
    target exists, letting sweeps skip the kernel entirely. *)

(** {1 Search} *)

val improve :
  ?pool:Parallel.Pool.t ->
  ?samples:int ->
  ?max_passes:int ->
  Problem.t ->
  int array ->
  outcome
(** First-improvement hill climbing (defaults: 2048 samples, at most 20
    passes).  The result's ratio is measured on the same sample as
    {!Optimal.ratio_of_assignment}, so values are directly comparable.
    The scorer's sample dimension is sharded across [pool] (default
    {!Parallel.Pool.global}); move acceptance stays sequential, the
    fused kernels reduce per-chunk integers in chunk order, and the
    swap batch evaluation is integer-exact, so the outcome —
    assignment, ratio, move and pass counts — is identical for every
    pool size, and identical to the historical mutate-and-undo
    evaluation (the equivalence suite pins both). *)

val rod_polished :
  ?pool:Parallel.Pool.t ->
  ?samples:int ->
  ?max_passes:int ->
  Problem.t ->
  outcome
(** ROD followed by {!improve}. *)
