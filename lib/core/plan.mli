(** A placement plan: the assignment of every operator to a node,
    together with the derived matrices of §2.3 (allocation matrix [A],
    node load coefficients [L^n = A L^o], weight matrix [W]). *)

type t = private {
  problem : Problem.t;
  assignment : int array;  (** [assignment.(j)] is operator [j]'s node. *)
}

val make : Problem.t -> int array -> t
(** Validates the assignment's length and node indices. *)

val assignment : t -> int array
(** A copy of the assignment vector. *)

val node_of : t -> int -> int

val ops_on : t -> int -> int list
(** Operators placed on a node, ascending. *)

val op_counts : t -> int array
(** Number of operators per node. *)

val allocation_matrix : t -> Linalg.Mat.t
(** The 0/1 matrix [A] ([n x m]). *)

val node_loads : t -> Linalg.Mat.t
(** [L^n = A L^o] ([n x d]), computed directly from the assignment. *)

val weight_matrix : t -> Linalg.Mat.t
(** [w_ik = (l^n_ik / l_k) / (C_i / C_T)] ([n x d]). *)

val node_load_at : t -> rates:Linalg.Vec.t -> int -> float
(* rodunits: cpu-sec/sim-sec *)
(** CPU demand of node [i] at rate point [rates]. *)

val utilizations : t -> rates:Linalg.Vec.t -> Linalg.Vec.t
(** Per-node load divided by capacity at a rate point. *)

val is_feasible_at : t -> rates:Linalg.Vec.t -> bool

val volume_qmc :
  ?samples:int -> ?lower:Linalg.Vec.t -> t -> Feasible.Volume.estimate
(** Quasi-Monte Carlo feasible-set estimate (default 4096 samples). *)

val pp : Format.formatter -> t -> unit
