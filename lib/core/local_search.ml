(* rodlint: obs *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Pool = Parallel.Pool

let obs_passes =
  Obs.counter ~help:"Local-search sweeps over all operators"
    "rod_ls_passes_total"

let obs_relocations =
  Obs.counter
    ~labels:[ ("kind", "relocation") ]
    ~help:"Accepted local-search moves, by kind" "rod_ls_moves_total"

let obs_swaps = Obs.counter ~labels:[ ("kind", "swap") ] "rod_ls_moves_total"

let obs_rejects =
  Obs.counter ~help:"Candidate moves evaluated but not applied"
    "rod_ls_rejects_total"

let obs_score =
  Obs.histogram
    ~buckets:(Obs.Histogram.linear ~start:0.05 ~step:0.05 ~count:19)
    ~help:"Feasible-set score (feasible/samples) after each pass"
    "rod_ls_pass_score"

type outcome = {
  assignment : int array;
  ratio : float;
  moves : int;
  passes : int;
}

(* Shared-sample scoring state, maintained incrementally: per-node,
   per-sample accumulated load and a per-sample count of capacity
   violations (feasible iff zero).  The sample dimension is sharded
   across the pool: per-sample state lines are touched by exactly one
   chunk, and the feasible count is reduced from per-chunk integer
   deltas, so every pool size computes the same scores. *)
type scorer = {
  samples : int;
  pool : Pool.t;
  loads : float array array;  (* op -> sample -> load contribution *)
  node_load : float array array;  (* node -> sample *)
  violations : int array;
  caps : Vec.t;
  mutable feasible : int;
}

let make_scorer ?pool problem assignment samples =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let n = Problem.n_nodes problem in
  let m = Problem.n_ops problem in
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  let dim = Problem.dim problem in
  let points = Array.make samples [||] in
  Pool.parallel_for pool ~n:samples (fun lo hi ->
      let cube = Array.make dim 0. in
      for s = lo to hi - 1 do
        let r = Array.make dim 0. in
        Feasible.Halton.point_into cube s;
        Feasible.Simplex.sample_ideal_into ~l ~c_total ~cube_point:cube
          ~scratch:cube r;
        points.(s) <- r
      done);
  let loads = Array.make m [||] in
  Pool.parallel_for pool ~n:m (fun lo hi ->
      for j = lo to hi - 1 do
        loads.(j) <-
          Array.init samples (fun s -> Mat.dot_rows problem.Problem.lo j points s)
      done);
  let node_load = Array.init n (fun _ -> Array.make samples 0.) in
  let caps = problem.Problem.caps in
  let violations = Array.make samples 0 in
  let feasible =
    Pool.map_reduce pool ~n:samples ~init:0 ~combine:( + ) ~map:(fun lo hi ->
        Array.iteri
          (fun j node ->
            let row = node_load.(node) and contrib = loads.(j) in
            for s = lo to hi - 1 do
              row.(s) <- row.(s) +. contrib.(s)
            done)
          assignment;
        let feasible = ref 0 in
        for s = lo to hi - 1 do
          for i = 0 to n - 1 do
            if node_load.(i).(s) > caps.(i) then
              violations.(s) <- violations.(s) + 1
          done;
          if violations.(s) = 0 then incr feasible
        done;
        !feasible)
  in
  { samples; pool; loads; node_load; violations; caps; feasible }

(* Apply op j's contribution to node i with the given sign, keeping the
   violation counters and feasible count consistent.  Chunks touch
   disjoint sample ranges; the feasible delta is an exact integer sum,
   so the parallel result is identical to the sequential one. *)
let shift scorer j i sign =
  let row = scorer.node_load.(i) and contrib = scorer.loads.(j) in
  let cap = scorer.caps.(i) in
  let violations = scorer.violations in
  let delta =
    Pool.map_reduce scorer.pool ~n:scorer.samples ~init:0 ~combine:( + )
      ~map:(fun lo hi ->
        let delta = ref 0 in
        for s = lo to hi - 1 do
          let before = row.(s) in
          let after = before +. (sign *. contrib.(s)) in
          row.(s) <- after;
          if before <= cap && after > cap then begin
            if violations.(s) = 0 then decr delta;
            violations.(s) <- violations.(s) + 1
          end
          else if before > cap && after <= cap then begin
            violations.(s) <- violations.(s) - 1;
            if violations.(s) = 0 then incr delta
          end
        done;
        !delta)
  in
  scorer.feasible <- scorer.feasible + delta

let move scorer j ~from_node ~to_node =
  shift scorer j from_node (-1.);
  shift scorer j to_node 1.

let improve ?pool ?(samples = 2048) ?(max_passes = 20) problem assignment =
  let m = Problem.n_ops problem and n = Problem.n_nodes problem in
  if Array.length assignment <> m then
    invalid_arg "Local_search.improve: assignment length";
  if max_passes < 1 then invalid_arg "Local_search.improve: max_passes < 1";
  let assignment = Array.copy assignment in
  let scorer = make_scorer ?pool problem assignment samples in
  let moves = ref 0 in
  let passes = ref 0 in
  let improved = ref true in
  (* Telemetry tallies stay in plain locals through the sweeps (the
     sweeps run pool-backed scoring) and are flushed to the registry
     once at the end. *)
  let relocations_applied = ref 0 in
  let swaps_applied = ref 0 in
  let rejected = ref 0 in
  (* One sweep of single-operator relocations; best-of-n per operator,
     applied immediately when it gains. *)
  let relocation_sweep () =
    let any = ref false in
    for j = 0 to m - 1 do
      let home = assignment.(j) in
      let best_gain = ref 0 and best_node = ref home in
      let tried = ref 0 in
      for i = 0 to n - 1 do
        if i <> home then begin
          incr tried;
          let before = scorer.feasible in
          move scorer j ~from_node:home ~to_node:i;
          let gain = scorer.feasible - before in
          move scorer j ~from_node:i ~to_node:home;
          if gain > !best_gain then begin
            best_gain := gain;
            best_node := i
          end
        end
      done;
      if !best_node <> home then begin
        move scorer j ~from_node:home ~to_node:!best_node;
        assignment.(j) <- !best_node;
        incr moves;
        incr relocations_applied;
        rejected := !rejected + !tried - 1;
        any := true
      end
      else rejected := !rejected + !tried
    done;
    !any
  in
  (* Pairwise exchanges escape single-move local optima (swapping two
     operators between their nodes keeps per-node counts stable while
     rebalancing directions). *)
  let swap_sweep () =
    let any = ref false in
    for j1 = 0 to m - 1 do
      for j2 = j1 + 1 to m - 1 do
        let a = assignment.(j1) and b = assignment.(j2) in
        if a <> b then begin
          let before = scorer.feasible in
          move scorer j1 ~from_node:a ~to_node:b;
          move scorer j2 ~from_node:b ~to_node:a;
          if scorer.feasible > before then begin
            assignment.(j1) <- b;
            assignment.(j2) <- a;
            moves := !moves + 2;
            incr swaps_applied;
            any := true
          end
          else begin
            incr rejected;
            move scorer j1 ~from_node:b ~to_node:a;
            move scorer j2 ~from_node:a ~to_node:b
          end
        end
      done
    done;
    !any
  in
  Obs.with_span ~cat:"place"
    ~args:[ ("ops", string_of_int m); ("samples", string_of_int samples) ]
    "ls.improve"
    (fun () ->
      while !improved && !passes < max_passes do
        incr passes;
        let relocated = relocation_sweep () in
        (* Swaps are O(m^2); only pay for them when relocations are dry. *)
        improved := (relocated || swap_sweep ());
        Obs.Histogram.observe obs_score
          (float_of_int scorer.feasible /. float_of_int samples)
      done);
  Obs.Counter.add obs_passes !passes;
  Obs.Counter.add obs_relocations !relocations_applied;
  Obs.Counter.add obs_swaps !swaps_applied;
  Obs.Counter.add obs_rejects !rejected;
  {
    assignment;
    ratio = float_of_int scorer.feasible /. float_of_int samples;
    moves = !moves;
    passes = !passes;
  }

let rod_polished ?pool ?samples ?max_passes problem =
  improve ?pool ?samples ?max_passes problem (Rod_algorithm.place problem)
