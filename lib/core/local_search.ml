(* rodlint: hot *)
(* rodlint: obs *)

module Vec = Linalg.Vec
module Pool = Parallel.Pool

let obs_passes =
  Obs.counter ~help:"Local-search sweeps over all operators"
    "rod_ls_passes_total"

let obs_relocations =
  Obs.counter
    ~labels:[ ("kind", "relocation") ]
    ~help:"Accepted local-search moves, by kind" "rod_ls_moves_total"

let obs_swaps = Obs.counter ~labels:[ ("kind", "swap") ] "rod_ls_moves_total"

let obs_rejects =
  Obs.counter ~help:"Candidate moves evaluated but not applied"
    "rod_ls_rejects_total"

let obs_score =
  Obs.histogram
    ~buckets:(Obs.Histogram.linear ~start:0.05 ~step:0.05 ~count:19)
    ~help:"Feasible-set score (feasible/samples) after each pass"
    "rod_ls_pass_score"

type outcome = {
  assignment : int array;
  ratio : float;
  moves : int;
  passes : int;
}

(* Shared-sample scoring state, maintained incrementally: per-node,
   per-sample accumulated load and a per-sample count of capacity
   violations (feasible iff zero).  The violation counts double as the
   candidate-evaluation skip index: because [Problem.t] guarantees
   nonnegative load coefficients (and the QMC rate points are
   nonnegative), every per-sample contribution is >= 0, so removing an
   operator from a node can only lower that node's load and adding one
   can only raise it.  A relocation therefore changes a sample's
   violation count by at most -1/+1 and a swap by at most -2/+2, which
   is what lets the fused kernels skip samples whose feasibility
   provably cannot flip ([violations >= 2] for relocations,
   [violations >= 3] for swaps).

   The sample dimension is sharded across the pool for the mutating
   [shift] path and the fused relocation kernel: per-sample state lines
   are touched by exactly one chunk, and every reduction is a sum of
   per-chunk integers combined in chunk order, so every pool size
   computes the same scores.  The swap evaluation path is read-only,
   integer-exact and pruned down to a handful of samples, so it runs
   sequentially. *)
type scorer = {
  samples : int;
  n_nodes : int;
  pool : Pool.t;
  loads : float array array;  (* op -> sample -> load contribution (>= 0) *)
  node_load : float array array;  (* node -> sample *)
  violations : int array;  (* sample -> number of saturated nodes *)
  caps : Vec.t;
  assignment : int array;  (* shared with the caller; current homes *)
  mutable feasible : int;
  (* Fused-kernel scratch, preallocated so the steady state allocates
     nothing: chunk [c] of the relocation kernel writes only
     [gain_chunks.(c)]; the reduced per-node gains land in [gains]. *)
  gain_chunks : int array array;
  gains : int array;
  (* Swap-batch scratch for one (j1, current state) preparation: the
     home-row subtraction shared across every partner j2, the violation
     delta of j1's removal, and the (typically tiny) list of samples
     where a swap could possibly gain feasibility. *)
  swap_a1 : float array;  (* sample -> node_load(a) -. loads(j1) *)
  swap_t1 : int array;  (* sample -> violation delta of removing j1 *)
  swap_pos : int array;  (* candidate-gain sample indices *)
  mutable swap_pos_len : int;
}

let feasible scorer = scorer.feasible

let n_samples scorer = scorer.samples

let make_scorer ?pool problem assignment samples =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let n = Problem.n_nodes problem in
  let m = Problem.n_ops problem in
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  let dim = Problem.dim problem in
  let lo = problem.Problem.lo in
  let loads = Array.init m (fun _ -> Array.make samples 0.) in
  (* One fused pass per sample chunk: generate the QMC rate point into
     per-chunk scratch (hoisted out of the loop body) and immediately
     fold it into every operator's per-sample load contribution — the
     samples x dim point table is never materialized.  The dot product
     accumulates left-to-right exactly like [Mat.dot_rows], so the load
     table is bit-identical to the former build-points-then-dot form. *)
  Pool.parallel_for pool ~n:samples (fun lo_s hi_s ->
      let cube = Array.make dim 0. in
      let point = Array.make dim 0. in
      let acc = ref 0. in
      for s = lo_s to hi_s - 1 do
        Feasible.Halton.point_into cube s;
        Feasible.Simplex.sample_ideal_into ~l ~c_total ~cube_point:cube
          ~scratch:cube point;
        for j = 0 to m - 1 do
          let row = lo.(j) in
          acc := 0.;
          for k = 0 to dim - 1 do
            acc := !acc +. (row.(k) *. point.(k))
          done;
          loads.(j).(s) <- !acc
        done
      done);
  let node_load = Array.init n (fun _ -> Array.make samples 0.) in
  let caps = problem.Problem.caps in
  let violations = Array.make samples 0 in
  let feasible =
    Pool.map_reduce pool ~n:samples ~init:0 ~combine:( + ) ~map:(fun lo hi ->
        Array.iteri
          (fun j node ->
            let row = node_load.(node) and contrib = loads.(j) in
            for s = lo to hi - 1 do
              row.(s) <- row.(s) +. contrib.(s)
            done)
          assignment;
        let feasible = ref 0 in
        for s = lo to hi - 1 do
          for i = 0 to n - 1 do
            if node_load.(i).(s) > caps.(i) then
              violations.(s) <- violations.(s) + 1
          done;
          if violations.(s) = 0 then incr feasible
        done;
        !feasible)
  in
  let ways = Pool.ways pool in
  {
    samples;
    n_nodes = n;
    pool;
    loads;
    node_load;
    violations;
    caps;
    assignment;
    feasible;
    gain_chunks = Array.init ways (fun _ -> Array.make n 0);
    gains = Array.make n 0;
    swap_a1 = Array.make samples 0.;
    swap_t1 = Array.make samples 0;
    swap_pos = Array.make samples 0;
    swap_pos_len = 0;
  }

(* Apply op j's contribution to node i with the given sign, keeping the
   violation counters and feasible count consistent.  Chunks touch
   disjoint sample ranges; the feasible delta is an exact integer sum,
   so the parallel result is identical to the sequential one. *)
let shift scorer j i sign =
  let row = scorer.node_load.(i) and contrib = scorer.loads.(j) in
  let cap = scorer.caps.(i) in
  let violations = scorer.violations in
  let delta =
    Pool.map_reduce scorer.pool ~n:scorer.samples ~init:0 ~combine:( + )
      ~map:(fun lo hi ->
        let delta = ref 0 in
        for s = lo to hi - 1 do
          let before = row.(s) in
          let after = before +. (sign *. contrib.(s)) in
          row.(s) <- after;
          if before <= cap && after > cap then begin
            if violations.(s) = 0 then decr delta;
            violations.(s) <- violations.(s) + 1
          end
          else if before > cap && after <= cap then begin
            violations.(s) <- violations.(s) - 1;
            if violations.(s) = 0 then incr delta
          end
        done;
        !delta)
  in
  scorer.feasible <- scorer.feasible + delta

let move scorer j ~from_node ~to_node =
  shift scorer j from_node (-1.);
  shift scorer j to_node 1.

(* Read-only feasibility delta of the hypothetical move of [j] from its
   current node to [to_node]: simulates exactly the two [shift]s a
   [move] would perform — same float expressions against the same
   stored values, both crossing directions checked like [shift] does —
   but writes nothing.  The per-sample feasible deltas of the two
   shifts telescope to [(v_after = 0) - (v_before = 0)], so the sum
   equals the [feasible]-after-move minus [feasible]-before a real
   [move] would produce, bit for bit. *)
let gain scorer j ~to_node =
  let from_node = scorer.assignment.(j) in
  if to_node = from_node then 0
  else begin
    let row_f = scorer.node_load.(from_node)
    and row_t = scorer.node_load.(to_node)
    and contrib = scorer.loads.(j) in
    let cap_f = scorer.caps.(from_node) and cap_t = scorer.caps.(to_node) in
    let violations = scorer.violations in
    Pool.map_reduce scorer.pool ~n:scorer.samples ~init:0 ~combine:( + )
      ~map:(fun lo hi ->
        let delta = ref 0 in
        for s = lo to hi - 1 do
          let v = violations.(s) in
          (* |Δv| <= 2 across both steps, so v >= 3 can never reach 0
             and, being nonzero already, contributes no delta. *)
          if v < 3 then begin
            let c = contrib.(s) in
            let before_f = row_f.(s) in
            let after_f = before_f +. (-1. *. c) in
            let v1 =
              if before_f <= cap_f && after_f > cap_f then v + 1
              else if before_f > cap_f && after_f <= cap_f then v - 1
              else v
            in
            let before_t = row_t.(s) in
            let after_t = before_t +. (1. *. c) in
            let v2 =
              if before_t <= cap_t && after_t > cap_t then v1 + 1
              else if before_t > cap_t && after_t <= cap_t then v1 - 1
              else v1
            in
            if v2 = 0 then begin
              if v <> 0 then incr delta
            end
            else if v = 0 then decr delta
          end
        done;
        !delta)
  end

(* Read-only feasibility delta of swapping [j1] and [j2] between their
   (distinct) current nodes: simulates the four [shift]s of the
   mutate-and-undo evaluation in order — remove j1 from a, add j1 to b,
   remove j2 from b, add j2 to a — with each step reading the value the
   previous step produced, exactly as the mutating path would. *)
let swap_gain scorer j1 j2 =
  let a = scorer.assignment.(j1) and b = scorer.assignment.(j2) in
  if a = b then
    invalid_arg "Local_search.swap_gain: operators share a node";
  let row_a = scorer.node_load.(a) and row_b = scorer.node_load.(b) in
  let c1 = scorer.loads.(j1) and c2 = scorer.loads.(j2) in
  let cap_a = scorer.caps.(a) and cap_b = scorer.caps.(b) in
  let violations = scorer.violations in
  Pool.map_reduce scorer.pool ~n:scorer.samples ~init:0 ~combine:( + )
    ~map:(fun lo hi ->
      let delta = ref 0 in
      for s = lo to hi - 1 do
        let v = violations.(s) in
        (* |Δv| <= 4 across the four steps but the two removals can
           lower it by at most 2, so v >= 5 is inert; with nonnegative
           contributions v >= 3 already is, and that is the bound the
           fused sweep uses.  The primitive keeps the sign-agnostic
           bound for symmetry with the arms below. *)
        if v < 5 then begin
          let ca = c1.(s) and cb = c2.(s) in
          let a0 = row_a.(s) in
          let a1 = a0 +. (-1. *. ca) in
          let v1 =
            if a0 <= cap_a && a1 > cap_a then v + 1
            else if a0 > cap_a && a1 <= cap_a then v - 1
            else v
          in
          let b0 = row_b.(s) in
          let b1 = b0 +. (1. *. ca) in
          let v2 =
            if b0 <= cap_b && b1 > cap_b then v1 + 1
            else if b0 > cap_b && b1 <= cap_b then v1 - 1
            else v1
          in
          let b2 = b1 +. (-1. *. cb) in
          let v3 =
            if b1 <= cap_b && b2 > cap_b then v2 + 1
            else if b1 > cap_b && b2 <= cap_b then v2 - 1
            else v2
          in
          let a2 = a1 +. (1. *. cb) in
          let v4 =
            if a1 <= cap_a && a2 > cap_a then v3 + 1
            else if a1 > cap_a && a2 <= cap_a then v3 - 1
            else v3
          in
          if v4 = 0 then begin
            if v <> 0 then incr delta
          end
          else if v = 0 then decr delta
        end
      done;
      !delta)

(* Upper bound on any relocation gain for operator [j]: a sample can
   only become feasible if it has exactly one saturated node, that node
   is j's home, and removing j's contribution un-saturates it.  The
   count of such samples bounds [relocation_gains] from above, so zero
   means no candidate target can improve and the fused kernel can be
   skipped wholesale. *)
let relocation_positive_bound scorer j =
  let home = scorer.assignment.(j) in
  let row = scorer.node_load.(home) and contrib = scorer.loads.(j) in
  let cap = scorer.caps.(home) in
  let violations = scorer.violations in
  let count = ref 0 in
  for s = 0 to scorer.samples - 1 do
    if violations.(s) = 1 then begin
      let h = row.(s) in
      if h > cap && h -. contrib.(s) <= cap then incr count
    end
  done;
  !count

(* Fused relocation kernel: the feasibility delta of moving [j] to
   every target node, in one pass over the sample dimension (one pool
   dispatch per operator instead of one per candidate).  Per sample the
   home-row subtraction and its violation transition are computed once
   and shared across all n candidates; the violation index skips
   samples that provably cannot flip:

   - v >= 2: a relocation changes v by at most -1/+1 (contributions are
     nonnegative, so the removal never saturates and the addition never
     un-saturates a node), hence v' >= 1 and the sample stays
     infeasible — delta 0 for every candidate.
   - v = 1: a candidate gains +1 exactly when j's removal un-saturates
     the home node (the unique saturated one) and the addition does not
     saturate the target; anything else leaves the sample infeasible.
   - v = 0: a candidate loses 1 exactly when the addition saturates the
     target (the removal cannot saturate the home).

   The per-candidate deltas are exact integers accumulated into
   per-chunk scratch rows and reduced in chunk order, so the result is
   identical for every pool size, and equals [gain scorer j ~to_node:i]
   for every i.  The returned array is scorer-owned scratch, valid
   until the next call. *)
let relocation_gains scorer j =
  let n = scorer.n_nodes in
  let home = scorer.assignment.(j) in
  let home_row = scorer.node_load.(home) and contrib = scorer.loads.(j) in
  let cap_h = scorer.caps.(home) in
  let node_load = scorer.node_load and caps = scorer.caps in
  let violations = scorer.violations in
  let gain_chunks = scorer.gain_chunks in
  ignore
    (Pool.map_chunks_i scorer.pool ~n:scorer.samples (fun c lo hi ->
         let row = gain_chunks.(c) in
         Array.fill row 0 n 0;
         for s = lo to hi - 1 do
           let v = violations.(s) in
           if v = 0 then begin
             let cs = contrib.(s) in
             if cs > 0. then
               for i = 0 to n - 1 do
                 if i <> home && node_load.(i).(s) +. cs > caps.(i) then
                   row.(i) <- row.(i) - 1
               done
           end
           else if v = 1 then begin
             let h = home_row.(s) in
             let cs = contrib.(s) in
             if h > cap_h && h -. cs <= cap_h then
               for i = 0 to n - 1 do
                 if i <> home && not (node_load.(i).(s) +. cs > caps.(i))
                 then row.(i) <- row.(i) + 1
               done
           end
         done));
  let gains = scorer.gains in
  Array.fill gains 0 n 0;
  let chunks = Array.length gain_chunks in
  for c = 0 to chunks - 1 do
    let row = gain_chunks.(c) in
    for i = 0 to n - 1 do
      gains.(i) <- gains.(i) + row.(i)
    done
  done;
  gains

(* Prepare the swap batch for [j1] against the current state: cache the
   home-row subtraction [node_load(a) -. c1] and its violation delta
   per sample (shared by every partner j2), and collect the samples
   where a swap could possibly gain feasibility.  A sample with
   violation count v can only reach v' = 0 if v + t1 <= 1, because the
   only remaining decrement in the four-step simulation is j2's removal
   from b; with nonnegative contributions v = 0 samples can only lose.
   The resulting candidate list is usually tiny, which is what makes
   the quadratic swap sweep affordable. *)
let swap_prepare scorer j1 =
  let a = scorer.assignment.(j1) in
  let row_a = scorer.node_load.(a) and c1 = scorer.loads.(j1) in
  let cap_a = scorer.caps.(a) in
  let violations = scorer.violations in
  let a1s = scorer.swap_a1 and t1s = scorer.swap_t1 in
  let pos = scorer.swap_pos in
  let len = ref 0 in
  for s = 0 to scorer.samples - 1 do
    let a0 = row_a.(s) in
    let a1 = a0 -. c1.(s) in
    let t1 = if a0 > cap_a && a1 <= cap_a then -1 else 0 in
    a1s.(s) <- a1;
    t1s.(s) <- t1;
    let v = violations.(s) in
    if v >= 1 && v <= 2 && v + t1 <= 1 then begin
      pos.(!len) <- s;
      incr len
    end
  done;
  scorer.swap_pos_len <- !len

(* Decide the swap (j1, j2) from the prepared batch: the positive part
   of the gain is summed over the candidate list only, and the negative
   part (feasible samples that the swap would break) is only computed
   when some sample actually flips feasible — with an early exit as
   soon as the losses cancel the wins.  The accept decision (gain > 0)
   is exactly the one the mutate-and-undo evaluation reaches, at a
   fraction of the work.  [swap_prepare scorer j1] must be current. *)
let swap_try scorer j1 j2 =
  let a = scorer.assignment.(j1) and b = scorer.assignment.(j2) in
  let row_b = scorer.node_load.(b) in
  let c1 = scorer.loads.(j1) and c2 = scorer.loads.(j2) in
  let cap_a = scorer.caps.(a) and cap_b = scorer.caps.(b) in
  let violations = scorer.violations in
  let a1s = scorer.swap_a1 and t1s = scorer.swap_t1 in
  let pos_idx = scorer.swap_pos in
  let pos = ref 0 in
  for k = 0 to scorer.swap_pos_len - 1 do
    let s = pos_idx.(k) in
    let v = violations.(s) in
    let cb = c2.(s) in
    let b0 = row_b.(s) in
    let b1 = b0 +. c1.(s) in
    let t2 = if b0 <= cap_b && b1 > cap_b then 1 else 0 in
    let b2 = b1 -. cb in
    let t3 = if b1 > cap_b && b2 <= cap_b then -1 else 0 in
    let a1 = a1s.(s) in
    let a2 = a1 +. cb in
    let t4 = if a1 <= cap_a && a2 > cap_a then 1 else 0 in
    if v + t1s.(s) + t2 + t3 + t4 = 0 then incr pos
  done;
  if !pos = 0 then false
  else begin
    (* Negative part: feasible samples the swap would break.  t1 is 0
       on every v = 0 sample (its home node cannot be saturated), so
       the sample stays feasible iff no step leaves a saturation
       behind. *)
    let neg = ref 0 in
    let s = ref 0 in
    let samples = scorer.samples in
    while !neg < !pos && !s < samples do
      if violations.(!s) = 0 then begin
        let cb = c2.(!s) in
        let b0 = row_b.(!s) in
        let b1 = b0 +. c1.(!s) in
        let t2 = if b1 > cap_b then 1 else 0 in
        let b2 = b1 -. cb in
        let t3 = if b1 > cap_b && b2 <= cap_b then -1 else 0 in
        let a1 = a1s.(!s) in
        let a2 = a1 +. cb in
        let t4 = if a2 > cap_a then 1 else 0 in
        if t2 + t3 + t4 <> 0 then incr neg
      end;
      incr s
    done;
    !pos > !neg
  end

let improve ?pool ?(samples = 2048) ?(max_passes = 20) problem assignment =
  let m = Problem.n_ops problem and n = Problem.n_nodes problem in
  if Array.length assignment <> m then
    invalid_arg "Local_search.improve: assignment length";
  if max_passes < 1 then invalid_arg "Local_search.improve: max_passes < 1";
  let assignment = Array.copy assignment in
  let scorer = make_scorer ?pool problem assignment samples in
  let moves = ref 0 in
  let passes = ref 0 in
  let improved = ref true in
  (* Telemetry tallies stay in plain locals through the sweeps (the
     sweeps run pool-backed scoring) and are flushed to the registry
     once at the end. *)
  let relocations_applied = ref 0 in
  let swaps_applied = ref 0 in
  let rejected = ref 0 in
  (* One sweep of single-operator relocations; best-of-n per operator,
     applied immediately when it gains.  Candidates are scored by the
     fused read-only kernel — one pool dispatch per operator instead of
     four per (operator, node) pair — and skipped wholesale when the
     positive bound proves no target can gain. *)
  let relocation_sweep () =
    let any = ref false in
    let best_node = ref 0 in
    let best_gain = ref 0 in
    for j = 0 to m - 1 do
      let home = assignment.(j) in
      let tried = n - 1 in
      best_node := home;
      if relocation_positive_bound scorer j > 0 then begin
        let gains = relocation_gains scorer j in
        best_gain := 0;
        (* Ascending scan with a strict improvement test resolves ties
           to the lowest target index, like the mutate-and-undo sweep
           did. *)
        for i = 0 to n - 1 do
          if i <> home && gains.(i) > !best_gain then begin
            best_gain := gains.(i);
            best_node := i
          end
        done
      end;
      if !best_node <> home then begin
        move scorer j ~from_node:home ~to_node:!best_node;
        assignment.(j) <- !best_node;
        incr moves;
        incr relocations_applied;
        rejected := !rejected + tried - 1;
        any := true
      end
      else rejected := !rejected + tried
    done;
    !any
  in
  (* Pairwise exchanges escape single-move local optima (swapping two
     operators between their nodes keeps per-node counts stable while
     rebalancing directions).  Each j1 prepares one shared batch; an
     accepted swap invalidates it (the home node changes), so the next
     pair re-prepares against the new state. *)
  let swap_sweep () =
    let any = ref false in
    let prepared = ref false in
    for j1 = 0 to m - 1 do
      prepared := false;
      for j2 = j1 + 1 to m - 1 do
        let a = assignment.(j1) and b = assignment.(j2) in
        if a <> b then begin
          if not !prepared then begin
            swap_prepare scorer j1;
            prepared := true
          end;
          if scorer.swap_pos_len > 0 && swap_try scorer j1 j2 then begin
            move scorer j1 ~from_node:a ~to_node:b;
            move scorer j2 ~from_node:b ~to_node:a;
            assignment.(j1) <- b;
            assignment.(j2) <- a;
            moves := !moves + 2;
            incr swaps_applied;
            any := true;
            prepared := false
          end
          else incr rejected
        end
      done
    done;
    !any
  in
  Obs.with_span ~cat:"place"
    ~args:[ ("ops", string_of_int m); ("samples", string_of_int samples) ]
    "ls.improve"
    (fun () ->
      while !improved && !passes < max_passes do
        incr passes;
        let relocated = relocation_sweep () in
        (* Swaps are O(m^2); only pay for them when relocations are dry. *)
        improved := (relocated || swap_sweep ());
        Obs.Histogram.observe obs_score
          (float_of_int scorer.feasible /. float_of_int samples)
      done);
  Obs.Counter.add obs_passes !passes;
  Obs.Counter.add obs_relocations !relocations_applied;
  Obs.Counter.add obs_swaps !swaps_applied;
  Obs.Counter.add obs_rejects !rejected;
  {
    assignment;
    ratio = float_of_int scorer.feasible /. float_of_int samples;
    moves = !moves;
    passes = !passes;
  }

let rod_polished ?pool ?samples ?max_passes problem =
  improve ?pool ?samples ?max_passes problem (Rod_algorithm.place problem)
