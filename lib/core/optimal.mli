(** Exhaustive optimal placement for small instances (§7.3.1 compares
    ROD against it on graphs of up to ~a dozen operators on two nodes).

    All [n^m] assignments are enumerated (with a symmetry reduction for
    homogeneous capacities: the first operator is pinned to node 0,
    cutting the space by a factor of [n]) and scored by the fraction of
    a shared quasi-Monte Carlo sample of the ideal simplex that each
    assignment keeps feasible.  Sharing one sample across assignments
    makes scores exactly comparable and the argmax meaningful. *)

type result = {
  assignment : int array;
  ratio : float; (* rodunits: 1 *)
      (** Feasible fraction of the shared QMC sample. *)
  explored : int;  (** Number of assignments evaluated. *)
}

val search_space : n_nodes:int -> n_ops:int -> float
(* rodunits: 1 *)
(** [n^m] as a float (to gauge tractability before calling). *)

val search :
  ?samples:int ->
  ?max_assignments:int ->
  ?pool:Parallel.Pool.t ->
  Problem.t ->
  result
(** Exhaustive search.  Defaults: 2048 samples, a guard of [2^22]
    assignments ([Invalid_argument] beyond — the caller should shrink
    the instance instead of waiting forever).

    The enumeration fans out across [pool] (default
    {!Parallel.Pool.global}): the first few assignment levels become
    explicit prefixes, each subtree is walked independently, and the
    per-subtree bests are merged in lexicographic prefix order with a
    strict comparison — the sequential tie-break (first assignment
    attaining the maximum wins).  A pool of 1 runs the classical
    depth-first walk unchanged; all pools of 2 or more share one fixed
    decomposition and return identical results. *)

val ratio_of_assignment : ?samples:int -> Problem.t -> int array -> float
(* rodunits: 1 *)
(** Score an arbitrary assignment against the same shared sample, e.g.
    to compare ROD's output with the optimum. *)
