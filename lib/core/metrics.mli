(** Resiliency metrics of a plan, in the normalized weight space (§3.3,
    §4): the MMAD axis distances, the MMPD plane distance, and the
    analytic bounds the two heuristics optimize. *)

type summary = {
  plane_distance : float; (* rodunits: 1 *)
      (** [r = min_i 1 / ||W_i||] — the MMPD objective; the normalized
          ideal value is [1 / sqrt d]. *)
  plane_distance_ratio : float; (* rodunits: 1 *)
      (** [r / r*], the x-axis of Figure 9 (in [0, 1] for any plan). *)
  min_axis_distances : Linalg.Vec.t;
      (** Per axis [k], [min_i 1 / w_ik] — the MMAD objectives
          (ideal 1). *)
  mmad_volume_bound : float; (* rodunits: 1 *)
      (** [prod_k min_i (1 / w_ik)]: the MMAD lower bound on
          [vol(F) / vol(ideal)] (§4.1). *)
  mmpd_volume_bound : float; (* rodunits: 1 *)
      (** The hypersphere lower bound of §4.2: the positive-orthant part
          of the ball of radius [r] fits inside the normalized feasible
          set, so [vol(F)/vol(ideal) >= d! * V_ball(d, r) / 2^d]
          (clipped to 1; without a lower bound point only). *)
  max_node_weight_norm : float; (* rodunits: 1 *)
      (** [max_i ||W_i||]. *)
}

val normalized_lower : Problem.t -> Linalg.Vec.t -> Linalg.Vec.t
(** Lower-bound rate point [B] mapped to the normalized space,
    [b'_k = l_k b_k / C_T] — the hypersphere center of §6.1. *)

val plane_distance : ?lower:Linalg.Vec.t -> Plan.t -> float
(* rodunits: 1 *)
(** [min_i (1 - W_i . B') / ||W_i||] with [B'] the normalized lower
    bound (origin by default).  [infinity] for a plan with an idle node
    and no other node... never: every node row of an all-assigned plan
    can still be zero; zero rows are skipped as infinitely distant. *)

val min_axis_distance : Plan.t -> int -> float
(* rodunits: 1 *)

val mmad_volume_bound : Plan.t -> float
(* rodunits: 1 *)

val mmpd_volume_bound : Plan.t -> float
(* rodunits: 1 *)

val summary : ?lower:Linalg.Vec.t -> Plan.t -> summary

val pp_summary : Format.formatter -> summary -> unit
