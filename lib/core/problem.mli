(** A Resilient-Operator-Distribution problem instance (§2.4): an
    operator load-coefficient matrix [L^o] ([m] operators by [d] rate
    variables) and a node capacity vector [C] ([n] nodes).

    The goal is an assignment of operators to nodes maximizing the
    feasible-set volume [vol { R >= 0 : A L^o R <= C }]. *)

type t = private {
  lo : Linalg.Mat.t;  (** [m x d]; nonnegative, no all-zero column. *)
  caps : Linalg.Vec.t;  (** [n]; strictly positive. *)
}

val create : lo:Linalg.Mat.t -> caps:Linalg.Vec.t -> t
(** Validates shapes and signs (every variable must carry load somewhere,
    or the feasible set would be unbounded along that axis).
    The matrices are copied. *)

val of_model : Query.Load_model.t -> caps:Linalg.Vec.t -> t
(** Instance over a (linearized) query-graph load model. *)

val of_graph : Query.Graph.t -> caps:Linalg.Vec.t -> t
(** Convenience: derive the load model, then build the instance. *)

val homogeneous_caps : n:int -> cap:float -> Linalg.Vec.t
(* rodunits: cap:node-cap -> _ *)

val n_ops : t -> int

val n_nodes : t -> int

val dim : t -> int
(** Number of rate variables [d]. *)

val op_load : t -> int -> Linalg.Vec.t
(** Row [j] of [L^o] (shared; treat as read-only). *)

val total_coefficients : t -> Linalg.Vec.t
(** [l_k]: column sums of [L^o]. *)

val total_capacity : t -> float
(* rodunits: node-cap *)
(** [C_T = sum_i C_i]. *)

val normalized_point : t -> Linalg.Vec.t -> Linalg.Vec.t
(** Map a rate point [R] into the paper's normalized coordinates
    [x_k = l_k r_k / C_T] (§3.3), e.g. to turn a lower-bound point [B]
    into the hypersphere center of the MMPD-with-lower-bound metric. *)

val pp : Format.formatter -> t -> unit
