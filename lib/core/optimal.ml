module Vec = Linalg.Vec
module Pool = Parallel.Pool

type result = {
  assignment : int array;
  ratio : float;
  explored : int;
}

let search_space ~n_nodes ~n_ops = float_of_int n_nodes ** float_of_int n_ops

let sample_points problem samples =
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  let dim = Problem.dim problem in
  Array.init samples (fun s ->
      Feasible.Simplex.sample_ideal ~l ~c_total
        ~cube_point:(Feasible.Halton.point ~dim s)
        ())

(* Per-operator, per-sample load contributions. *)
let op_sample_loads problem points =
  Array.init (Problem.n_ops problem) (fun j ->
      Array.init (Array.length points) (fun s ->
          Linalg.Mat.dot_rows problem.Problem.lo j points s))

let ratio_of_assignment ?(samples = 2048) problem assignment =
  let m = Problem.n_ops problem in
  if Array.length assignment <> m then
    invalid_arg "Optimal.ratio_of_assignment: assignment length";
  let points = sample_points problem samples in
  let plan = Plan.make problem assignment in
  let ln = Plan.node_loads plan in
  Feasible.Volume.ratio_of_points ~ln ~caps:problem.Problem.caps ~points

(* Exhaustive walk of one assignment subtree: every operator below
   [depth] is pinned by [prefix], the rest are enumerated depth-first.
   Each subtree carries its own accumulator state, so subtrees are
   independent and can run on separate domains. *)
let explore_subtree ~n ~m ~samples ~loads ~caps ~limit ~prefix ~depth =
  (* node_load.(i).(s): accumulated load of node i at sample s.
     violations.(s): number of (node, sample) capacity breaches, so a
     sample is feasible iff its counter is zero. *)
  let node_load = Array.init n (fun _ -> Array.make samples 0.) in
  let violations = Array.make samples 0 in
  let assignment = Array.make m 0 in
  let best = ref { assignment = Array.copy assignment; ratio = -1.; explored = 0 } in
  let explored = ref 0 in
  let apply j i delta =
    let row = node_load.(i) and contrib = loads.(j) in
    let cap = caps.(i) in
    for s = 0 to samples - 1 do
      let before = row.(s) in
      let after = before +. (delta *. contrib.(s)) in
      row.(s) <- after;
      if before <= cap && after > cap then violations.(s) <- violations.(s) + 1
      else if before > cap && after <= cap then violations.(s) <- violations.(s) - 1
    done
  in
  Array.iteri
    (fun j i ->
      assignment.(j) <- i;
      apply j i 1.)
    prefix;
  let leaf () =
    incr explored;
    let feasible = ref 0 in
    for s = 0 to samples - 1 do
      if violations.(s) = 0 then incr feasible
    done;
    let ratio = float_of_int !feasible /. float_of_int samples in
    if ratio > !best.ratio then
      best := { assignment = Array.copy assignment; ratio; explored = 0 }
  in
  let rec visit j =
    if j = m then leaf ()
    else
      for i = 0 to limit j - 1 do
        assignment.(j) <- i;
        apply j i 1.;
        visit (j + 1);
        apply j i (-1.)
      done
  in
  visit depth;
  (!best, !explored)

let search ?(samples = 2048) ?(max_assignments = 1 lsl 22) ?pool problem =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let n = Problem.n_nodes problem and m = Problem.n_ops problem in
  let space = search_space ~n_nodes:n ~n_ops:m in
  let homogeneous =
    Vec.for_all (fun c -> c = problem.Problem.caps.(0)) problem.Problem.caps
  in
  let effective = if homogeneous then space /. float_of_int n else space in
  if effective > float_of_int max_assignments then
    invalid_arg
      (Printf.sprintf
         "Optimal.search: %.3g assignments exceed the guard of %d" effective
         max_assignments);
  let points = sample_points problem samples in
  let loads = op_sample_loads problem points in
  let caps = problem.Problem.caps in
  let limit j = if j = 0 && homogeneous then 1 else n in
  (* Fan the first [depth] assignment levels out as explicit prefixes,
     one subtree task per prefix, enumerated in lexicographic order.  A
     sequential pool keeps the single root subtree — exactly the
     classical depth-first walk.  The target count is a constant (not a
     multiple of the pool size) so that every parallel pool uses the
     same decomposition and returns bit-identical results. *)
  let target = if Pool.ways pool <= 1 then 1 else 64 in
  let rec expand rev_prefixes count depth =
    if depth >= m || count >= target then (rev_prefixes, depth)
    else
      let lim = limit depth in
      expand
        (List.concat_map
           (fun p -> List.init lim (fun i -> i :: p))
           rev_prefixes)
        (count * lim) (depth + 1)
  in
  let rev_prefixes, depth = expand [ [] ] 1 0 in
  let tasks =
    List.map
      (fun rev_prefix ->
        let prefix = Array.of_list (List.rev rev_prefix) in
        fun () ->
          explore_subtree ~n ~m ~samples ~loads ~caps ~limit ~prefix ~depth)
      rev_prefixes
  in
  let subtree_results = Pool.run pool tasks in
  (* Merge in prefix (lexicographic) order with a strict comparison, so
     the first assignment attaining the best ratio wins — the same
     tie-break as the sequential enumeration. *)
  let best, explored =
    List.fold_left
      (fun (best, total) (b, e) ->
        ((if b.ratio > best.ratio then b else best), total + e))
      ({ assignment = Array.make m 0; ratio = -1.; explored = 0 }, 0)
      subtree_results
  in
  { best with explored }
