(** Hyperplane geometry in the paper's normalized weight space (§3.3).

    A node with weight row [w = (w_1, ..., w_d)] is fully loaded on the
    hyperplane [w . x = 1]; the ideal hyperplane is [sum x_k = 1].  The
    two ROD heuristics compare hyperplanes through their {e axis
    distances} ([1 / w_k], MMAD) and {e plane distances}
    ([1 / ||w||_2], MMPD). *)

val axis_distance : Linalg.Vec.t -> int -> float
(* rodunits: 1 *)
(** [axis_distance w k] is [1 / w_k], or [infinity] when [w_k = 0]. *)

val min_axis_distance : Linalg.Vec.t list -> int -> float
(* rodunits: 1 *)
(** Minimum over hyperplanes of the axis-[k] distance. *)

val plane_distance : Linalg.Vec.t -> float
(* rodunits: 1 *)
(** Distance from the origin to [w . x = 1]: [1 / ||w||_2]; [infinity]
    for the zero row (an empty node). *)

val plane_distance_from : point:Linalg.Vec.t -> Linalg.Vec.t -> float
(* rodunits: 1 *)
(** Distance from [point] to [w . x = 1]: [(1 - w . point) / ||w||_2]
    (§6.1's hypersphere radius around a normalized lower bound); may be
    negative when the point lies above the hyperplane. *)

val min_plane_distance : ?point:Linalg.Vec.t -> Linalg.Vec.t list -> float
(* rodunits: 1 *)
(** [r = min_i dist(point, H_i)], the MMPD objective ([point] defaults
    to the origin). *)

val ideal_plane_distance : ?point:Linalg.Vec.t -> int -> float
(* rodunits: 1 *)
(** Distance from [point] (default origin) to the ideal hyperplane
    [sum_k x_k = 1] in dimension [d]: [(1 - sum point) / sqrt d]. *)

val below_ideal : Linalg.Vec.t -> bool
(** Whether hyperplane [w . x = 1] lies on or above the ideal hyperplane
    everywhere in the positive orthant, i.e. [w_k <= 1] for all [k] —
    the paper's class-I test. *)

val hypersphere_volume : dim:int -> radius:float -> float
(* rodunits: radius:1 -> 1 *)
(** Volume of the full Euclidean ball (the paper's MMPD lower-bound
    argument uses its positive-orthant portion, [1/2^d] of this). *)
