(** Uniform sampling over the solid standard simplex
    [S_d = { x >= 0 : sum x_k <= 1 }] and over the paper's {e ideal
    feasible set} [F* = { R >= B : sum_k l_k r_k <= C_T }] (Theorem 1).

    The unit-cube-to-simplex map is the classical uniform-spacings
    transform: sort the cube coordinates and take consecutive gaps; the
    [d+1] gaps are jointly Dirichlet(1,...,1), so the first [d] are
    uniform on [S_d].  Applied to Halton points this gives quasi-Monte
    Carlo integration over the simplex; applied to pseudo-random points,
    plain Monte Carlo. *)

val of_cube : float array -> float array
(** Map a point of [[0,1]^d] to the solid simplex [S_d].  The input is
    not modified. *)

val volume : int -> float
(** [volume d] is [1 / d!], the volume of [S_d]. *)

val ideal_volume : l:Linalg.Vec.t -> c_total:float -> ?lower:Linalg.Vec.t ->
  unit -> float
(** Volume of the ideal feasible set
    [{ R >= lower : l . R <= c_total }]: [(c_total - l.lower)^d / (d! prod l_k)].
    Zero when the lower bound already exceeds the capacity hyperplane.
    Requires strictly positive [l]. *)

val to_ideal :
  l:Linalg.Vec.t ->
  c_total:float ->
  ?lower:Linalg.Vec.t ->
  float array ->
  float array
(** [to_ideal ~l ~c_total ~lower x] maps a point [x] of [S_d] uniformly
    onto the ideal feasible set:
    [r_k = lower_k + x_k * (c_total - l.lower) / l_k]. *)

val sample_ideal :
  l:Linalg.Vec.t ->
  c_total:float ->
  ?lower:Linalg.Vec.t ->
  cube_point:float array ->
  unit ->
  float array
(** Composition of {!of_cube} and {!to_ideal}. *)

val sample_ideal_into :
  l:Linalg.Vec.t ->
  c_total:float ->
  ?lower:Linalg.Vec.t ->
  cube_point:float array ->
  scratch:float array ->
  float array ->
  unit
(** [sample_ideal_into ~l ~c_total ~cube_point ~scratch dst] is
    {!sample_ideal} without allocation: the sorted copy of [cube_point]
    goes through [scratch] and the result is written into [dst].  All
    three arrays must have the dimension of [l].  [scratch] may alias
    [cube_point] (which is then destroyed) and [dst] may alias
    [scratch]; results are bit-identical to {!sample_ideal}. *)
