(* rodlint: hot *)
(* rodlint: obs *)
(* rodlint: deterministic *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Pool = Parallel.Pool

let obs_samples =
  Obs.counter ~help:"Volume samples evaluated" "rod_volume_samples_total"

let obs_feasible =
  Obs.counter ~help:"Volume samples inside the feasible set"
    "rod_volume_feasible_total"

(* Per-chunk attribution of pool-parallel estimates: chunk index k of a
   map_chunks partition maps to one worker slot, so these counters show
   how feasibility mass spread across the pool's chunks. *)
let obs_chunk_feasible k =
  Obs.counter
    ~labels:[ ("chunk", string_of_int k) ]
    ~help:"Volume samples found feasible, by pool chunk"
    "rod_volume_chunk_feasible_total"

type estimate = {
  ratio : float;
  volume : float;
  ideal_volume : float;
  samples : int;
  feasible_samples : int;
  std_error : float;
}

let is_feasible ~ln ~caps r =
  let n = Mat.rows ln in
  let rec check i =
    i >= n || (Vec.dot (Mat.row ln i) r <= caps.(i) +. 1e-12 && check (i + 1))
  in
  check 0

(* Shared estimator core: [count ~l ~c_total lo hi] counts feasible
   samples on the half-open index range [lo, hi).  When a pool is given
   the index range is partitioned into contiguous chunks and the integer
   counts summed in chunk order — bit-identical to the sequential run
   for any index-addressed sampler. *)
let estimate ?pool ~count ~ln ~caps ?l ?lower ~samples () =
  if samples < 1 then invalid_arg "Volume: samples < 1";
  let l = match l with Some l -> l | None -> Mat.col_sums ln in
  let c_total = Vec.sum caps in
  let ideal = Simplex.ideal_volume ~l ~c_total ?lower () in
  if ideal <= 0. then
    { ratio = 0.; volume = 0.; ideal_volume = 0.; samples; feasible_samples = 0;
      std_error = 0. }
  else begin
    let count = count ~l ~c_total in
    let feasible =
      match pool with
      | None -> count 0 samples
      | Some pool ->
        (* map_chunks partitions exactly like map_reduce and the fold
           below runs in ascending chunk order, so the total is
           bit-identical to the old map_reduce — but the per-chunk
           counts survive for domain attribution. *)
        let chunk_counts = Pool.map_chunks pool ~n:samples count in
        Array.iteri
          (fun k c -> Obs.Counter.add (obs_chunk_feasible k) c)
          chunk_counts;
        Array.fold_left ( + ) 0 chunk_counts
    in
    Obs.Counter.add obs_samples samples;
    Obs.Counter.add obs_feasible feasible;
    let ratio = float_of_int feasible /. float_of_int samples in
    {
      ratio;
      volume = ratio *. ideal;
      ideal_volume = ideal;
      samples;
      feasible_samples = feasible;
      std_error = sqrt (ratio *. (1. -. ratio) /. float_of_int samples);
    }
  end

let estimate_with ?pool ~next_cube_point ~ln ~caps ?l ?lower ~samples () =
  let count ~l ~c_total lo hi =
    let feasible = ref 0 in
    for i = lo to hi - 1 do
      let cube_point = next_cube_point i in
      let r = Simplex.sample_ideal ~l ~c_total ?lower ~cube_point () in
      if is_feasible ~ln ~caps r then incr feasible
    done;
    !feasible
  in
  estimate ?pool ~count ~ln ~caps ?l ?lower ~samples ()

let ratio_qmc ?pool ~ln ~caps ?l ?lower ~samples () =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let dim = Mat.cols ln in
  (* Halton points are index-addressed and pure, so each chunk can fill
     and consume one scratch point buffer: no allocation per sample. *)
  let count ~l ~c_total lo hi =
    let cube = Array.make dim 0. in
    let r = Array.make dim 0. in
    let feasible = ref 0 in
    for i = lo to hi - 1 do
      Halton.point_into cube i;
      Simplex.sample_ideal_into ~l ~c_total ?lower ~cube_point:cube
        ~scratch:cube r;
      if is_feasible ~ln ~caps r then incr feasible
    done;
    !feasible
  in
  estimate ~pool ~count ~ln ~caps ?l ?lower ~samples ()

let ratio_mc ~rng ~ln ~caps ?l ?lower ~samples () =
  let dim = Mat.cols ln in
  (* The rng is stateful, so this estimator stays sequential: the draw
     order (and hence the result) is part of the contract. *)
  let draw _ = Array.init dim (fun _ -> Random.State.float rng 1.) in
  estimate_with ~next_cube_point:draw ~ln ~caps ?l ?lower ~samples ()

let max_scale ~ln ~caps ~direction =
  if Vec.dim direction <> Mat.cols ln then
    invalid_arg "Volume.max_scale: direction dimension mismatch";
  if Vec.exists (fun x -> x < 0.) direction
     || not (Vec.exists (fun x -> x > 0.) direction)
  then invalid_arg "Volume.max_scale: direction must be nonnegative, nonzero";
  let best = ref infinity in
  for i = 0 to Mat.rows ln - 1 do
    (* rodscan: alloc-ok headroom bound: one dot per node, once per deploy query, not the QMC kernel *)
    let along = Vec.dot (Mat.row ln i) direction in
    if along > 0. then best := Float.min !best (caps.(i) /. along)
  done;
  !best

let ratio_of_points ~ln ~caps ~points =
  if Array.length points = 0 then invalid_arg "Volume.ratio_of_points: no points";
  let feasible =
    Array.fold_left
      (fun acc r -> if is_feasible ~ln ~caps r then acc + 1 else acc)
      0 points
  in
  float_of_int feasible /. float_of_int (Array.length points)
