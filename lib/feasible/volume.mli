(** Feasible-set size estimation (the optimization objective of the
    whole paper, §2.4).

    Given node load coefficients [L^n] and capacities [C], the feasible
    set is [F = { R in D : L^n R <= C }] where the workload set [D] is
    the positive orthant, optionally truncated below by a lower-bound
    point [B] (§6.1).  Theorem 1 bounds [F] by the {e ideal simplex}
    [F_ideal = { R >= B : l . R <= C_T }] with [l] the column sums of [L^n],
    so we estimate [vol(F) / vol(F_ideal)] by sampling [F_ideal] uniformly —
    with Halton points (quasi-Monte Carlo, as in the paper's simulator)
    or pseudo-random points (as in its Borealis prototype runs). *)

type estimate = {
  ratio : float; (* rodunits: 1 *)
      (** [vol(F) / vol(F_ideal)], in [0, 1]. *)
  volume : float;  (** Absolute volume, [ratio * vol(F_ideal)]. *)
  ideal_volume : float;  (** [vol(F_ideal)]. *)
  samples : int;
  feasible_samples : int;
  std_error : float; (* rodunits: 1 *)
      (** Binomial standard error of [ratio],
          [sqrt (ratio * (1 - ratio) / samples)].  Exact for the Monte
          Carlo estimator; a conservative upper bound for the
          low-discrepancy (QMC) one. *)
}

val is_feasible :
  ln:Linalg.Mat.t -> caps:Linalg.Vec.t -> Linalg.Vec.t -> bool
(** [is_feasible ~ln ~caps r] checks [L^n r <= C] row-wise. *)

val estimate_with :
  ?pool:Parallel.Pool.t ->
  next_cube_point:(int -> float array) ->
  ln:Linalg.Mat.t ->
  caps:Linalg.Vec.t ->
  ?l:Linalg.Vec.t ->
  ?lower:Linalg.Vec.t ->
  samples:int ->
  unit ->
  estimate
(** The generic estimator behind {!ratio_qmc} and {!ratio_mc}:
    [next_cube_point i] supplies the [i]-th unit-cube point.  When
    [pool] is given, the sample index range is partitioned into
    contiguous chunks evaluated on the pool and the per-chunk feasible
    counters are summed in chunk order — bit-identical to the sequential
    run provided [next_cube_point] is pure and index-addressed (do not
    pass a pool with a stateful sampler). *)

val ratio_qmc :
  ?pool:Parallel.Pool.t ->
  ln:Linalg.Mat.t ->
  caps:Linalg.Vec.t ->
  ?l:Linalg.Vec.t ->
  ?lower:Linalg.Vec.t ->
  samples:int ->
  unit ->
  estimate
(** Quasi-Monte Carlo estimate.  [l] defaults to the column sums of
    [ln]; pass it explicitly when comparing several plans of the same
    problem so they share one ideal simplex.  Requires every [l_k > 0].
    Runs on [pool] (default {!Parallel.Pool.global}); Halton points are
    index-addressed, so the result is identical for every pool size. *)

val ratio_mc :
  rng:Random.State.t ->
  ln:Linalg.Mat.t ->
  caps:Linalg.Vec.t ->
  ?l:Linalg.Vec.t ->
  ?lower:Linalg.Vec.t ->
  samples:int ->
  unit ->
  estimate
(** Plain Monte Carlo estimate with a supplied RNG. *)

val ratio_of_points :
  ln:Linalg.Mat.t ->
  caps:Linalg.Vec.t ->
  points:Linalg.Vec.t array ->
  float
(* rodunits: 1 *)
(** Fraction of the given workload points that are feasible — the
    prototype methodology: probe a fixed set of rate points. *)

val max_scale :
  ln:Linalg.Mat.t -> caps:Linalg.Vec.t -> direction:Linalg.Vec.t -> float
(* rodunits: 1 *)
(** The feasibility boundary along a ray: the largest [t] such that
    [t * direction] is feasible, i.e. [min_i C_i / (ln_i . direction)]
    ([infinity] if the ray never meets a constraint).  [direction] must
    be nonnegative and nonzero. *)
