(* rodlint: hot *)
(* rodlint: deterministic *)

module Vec = Linalg.Vec

let of_cube u =
  let d = Array.length u in
  if d = 0 then invalid_arg "Simplex.of_cube: empty point";
  let sorted = Array.copy u in
  Array.sort Float.compare sorted;
  Array.init d (fun k -> if k = 0 then sorted.(0) else sorted.(k) -. sorted.(k - 1))

let volume d =
  if d < 0 then invalid_arg "Simplex.volume: negative dimension";
  let rec fact acc k = if k <= 1 then acc else fact (acc *. float_of_int k) (k - 1) in
  1. /. fact 1. d

let check_l l =
  if Vec.dim l = 0 then invalid_arg "Simplex: empty coefficient vector";
  if Vec.exists (fun x -> x <= 0.) l then
    invalid_arg "Simplex: load coefficients must be strictly positive"

let budget ~l ~c_total ~lower =
  match lower with
  | None -> c_total
  | Some b ->
    if Vec.dim b <> Vec.dim l then
      invalid_arg "Simplex: lower bound dimension mismatch";
    if Vec.exists (fun x -> x < 0.) b then
      invalid_arg "Simplex: negative lower bound";
    c_total -. Vec.dot l b

let ideal_volume ~l ~c_total ?lower () =
  check_l l;
  let d = Vec.dim l in
  let slack = budget ~l ~c_total ~lower in
  if slack <= 0. then 0.
  else
    let prod = Array.fold_left ( *. ) 1. l in
    (slack ** float_of_int d) *. volume d /. prod

let to_ideal ~l ~c_total ?lower x =
  check_l l;
  if Array.length x <> Vec.dim l then
    invalid_arg "Simplex.to_ideal: dimension mismatch";
  let slack = budget ~l ~c_total ~lower in
  if slack < 0. then invalid_arg "Simplex.to_ideal: lower bound is infeasible";
  let base k = match lower with None -> 0. | Some b -> b.(k) in
  Array.mapi (fun k xk -> base k +. (xk *. slack /. l.(k))) x

let sample_ideal ~l ~c_total ?lower ~cube_point () =
  to_ideal ~l ~c_total ?lower (of_cube cube_point)

let sample_ideal_into ~l ~c_total ?lower ~cube_point ~scratch dst =
  check_l l;
  let d = Vec.dim l in
  if Array.length cube_point <> d then
    invalid_arg "Simplex.sample_ideal_into: dimension mismatch";
  if Array.length scratch <> d || Array.length dst <> d then
    invalid_arg "Simplex.sample_ideal_into: buffer dimension mismatch";
  let slack = budget ~l ~c_total ~lower in
  if slack < 0. then
    invalid_arg "Simplex.to_ideal: lower bound is infeasible";
  if scratch != cube_point then Array.blit cube_point 0 scratch 0 d;
  Array.sort Float.compare scratch;
  (* Descending, so [dst] may alias [scratch]: step [k] reads
     [scratch.(k)] and [scratch.(k - 1)], both still unwritten. *)
  for k = d - 1 downto 0 do
    let gap = if k = 0 then scratch.(0) else scratch.(k) -. scratch.(k - 1) in
    let base = match lower with None -> 0. | Some b -> b.(k) in
    dst.(k) <- base +. (gap *. slack /. l.(k))
  done
