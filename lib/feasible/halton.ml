(* rodlint: hot *)
(* rodlint: deterministic *)

let primes =
  [| 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71 |]

let radical_inverse ~base i =
  if base < 2 then invalid_arg "Halton.radical_inverse: base < 2";
  if i < 0 then invalid_arg "Halton.radical_inverse: negative index";
  let fbase = float_of_int base in
  let rec loop i inv_scale acc =
    if i = 0 then acc
    else
      let digit = i mod base in
      loop (i / base) (inv_scale /. fbase)
        (acc +. (float_of_int digit *. inv_scale))
  in
  loop i (1. /. fbase) 0.

let point_into dst i =
  let dim = Array.length dst in
  if dim < 1 || dim > Array.length primes then
    invalid_arg "Halton.point: dim outside [1, 20]";
  if i < 0 then invalid_arg "Halton.point: negative index";
  for k = 0 to dim - 1 do
    dst.(k) <- radical_inverse ~base:primes.(k) (i + 1)
  done

let point ~dim i =
  if dim < 1 || dim > Array.length primes then
    invalid_arg "Halton.point: dim outside [1, 20]";
  let dst = Array.make dim 0. in
  point_into dst i;
  dst

let sequence ~dim ~n = Array.init n (fun i -> point ~dim i)
