(** Halton low-discrepancy sequences for quasi-Monte Carlo integration
    (the paper computes simulator feasible-set sizes with QMC, §7.1). *)

val radical_inverse : base:int -> int -> float
(** [radical_inverse ~base i] reflects the base-[base] digits of [i]
    about the radix point; [i >= 0], [base >= 2]. *)

val point : dim:int -> int -> float array
(** [point ~dim i] is the [i]-th Halton point in [[0,1)^dim], using the
    first [dim] primes as bases.  [dim <= 20].  Indexing starts the
    sequence at [i + 1] to skip the all-zeros point. *)

val point_into : float array -> int -> unit
(** [point_into dst i] writes [point ~dim:(Array.length dst) i] into
    [dst] — the allocation-free form the volume estimator's inner loop
    uses (points are index-addressed, so a reused buffer changes no
    result). *)

val sequence : dim:int -> n:int -> float array array
(** The first [n] points. *)
