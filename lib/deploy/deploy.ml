(* rodlint: obs *)
(* rodproto: protocol — every Plan.make materialization here must be
   dominated by a Plan_check gate (rodproto's gated-mutation pass) *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat

let obs_deploys =
  Obs.counter ~help:"Deployments completed (analysis gate passed)"
    "rod_deploy_total"

let obs_ratio =
  Obs.gauge ~help:"Feasible-set ratio of the last deployment"
    "rod_deploy_feasible_ratio"

type t = {
  graph : Query.Graph.t;
  problem : Rod.Problem.t;
  plan : Rod.Plan.t;
  ratio : float;
  network : Spe.Network.t option;
  profile : Spe.Profiler.profile_result option;
  analysis : Analysis.Plan_check.report;
}

let finish ?(polish = false) ?lower ?(samples = 8192) ~graph ~caps ~network
    ~profile () =
  Obs.with_span ~cat:"deploy" "deploy.finish" (fun () ->
      (* Static analysis gates every deployment: a plan with a statically
         infeasible operator (or malformed load model) is rejected before
         any placement work happens. *)
      let analysis =
        Obs.with_span ~cat:"deploy" "deploy.analyze" (fun () ->
            Analysis.Plan_check.check_graph graph ~caps)
      in
      Analysis.Plan_check.assert_ok ~what:"deployment" analysis;
      let problem = Rod.Problem.of_graph graph ~caps in
      let assignment =
        Obs.with_span ~cat:"deploy" "deploy.place" (fun () ->
            Rod.Rod_algorithm.place ?lower problem)
      in
      let assignment =
        if polish then
          Obs.with_span ~cat:"deploy" "deploy.polish" (fun () ->
              (Rod.Local_search.improve ~samples problem assignment)
                .Rod.Local_search.assignment)
        else assignment
      in
      let plan = Rod.Plan.make problem assignment in
      let est =
        Obs.with_span ~cat:"deploy" "deploy.volume" (fun () ->
            Rod.Plan.volume_qmc ~samples ?lower plan)
      in
      Obs.Counter.incr obs_deploys;
      Obs.Gauge.set obs_ratio est.Feasible.Volume.ratio;
      {
        graph;
        problem;
        plan;
        ratio = est.Feasible.Volume.ratio;
        network;
        profile;
        analysis;
      })

let of_cost_model ?polish ?lower ?samples ~graph ~caps () =
  finish ?polish ?lower ?samples ~graph ~caps ~network:None ~profile:None ()

let of_network ?polish ?samples ?replays ~network ~sample ~caps () =
  let profile = Spe.Profiler.profile ?replays network ~inputs:sample in
  finish ?polish ?samples ~graph:profile.Spe.Profiler.graph ~caps
    ~network:(Some network) ~profile:(Some profile) ()

let of_query_file ?polish ?samples ?replays ~path ~sample ~caps () =
  match Cql.Frontend.compile_file ~path with
  | Error e -> Error (Cql.Frontend.error_to_string e)
  | Ok compiled -> (
    match
      of_network ?polish ?samples ?replays
        ~network:compiled.Cql.Compile.network ~sample ~caps ()
    with
    | deployment -> Ok deployment
    | exception Invalid_argument message -> Error message)

let assignment t = Rod.Plan.assignment t.plan

let node_roster t node =
  List.map
    (fun j -> (Query.Graph.op t.graph j).Query.Op.name)
    (Rod.Plan.ops_on t.plan node)

let expected_utilization t ~rates =
  let model = Query.Load_model.derive t.graph in
  if Vec.dim rates <> Query.Load_model.d_system model then
    invalid_arg "Deploy.expected_utilization: system rate dimension";
  let vars = Query.Load_model.eval_vars model ~sys_rates:rates in
  let ln = Rod.Plan.node_loads t.plan in
  let caps = t.problem.Rod.Problem.caps in
  Vec.init (Mat.rows ln) (fun i -> Vec.dot (Mat.row ln i) vars /. caps.(i))

let headroom t ~direction =
  let model = Query.Load_model.derive t.graph in
  let d_sys = Query.Load_model.d_system model in
  if Vec.dim direction <> d_sys then
    invalid_arg "Deploy.headroom: system rate dimension";
  if Query.Graph.has_nonlinear t.graph then begin
    (* Nonlinear loads along the ray: bisect against the true model. *)
    let feasible scale =
      let u = expected_utilization t ~rates:(Vec.scale scale direction) in
      Vec.max_elt u <= 1. +. 1e-12
    in
    let rec grow hi n =
      if n = 0 || not (feasible hi) then hi else grow (2. *. hi) (n - 1)
    in
    let hi = grow 1. 60 in
    let rec bisect lo hi n =
      if n = 0 then lo
      else
        let mid = (lo +. hi) /. 2. in
        if feasible mid then bisect mid hi (n - 1) else bisect lo mid (n - 1)
    in
    if feasible hi then hi else bisect 0. hi 60
  end
  else
    Feasible.Volume.max_scale ~ln:(Rod.Plan.node_loads t.plan)
      ~caps:t.problem.Rod.Problem.caps ~direction

let replan ?pool ?samples ?(budget = 3) ?cost_of t ~rates =
  let model = Query.Load_model.derive t.graph in
  if Vec.dim rates <> Query.Load_model.d_system model then
    invalid_arg "Deploy.replan: system rate dimension";
  let vars = Query.Load_model.eval_vars model ~sys_rates:rates in
  let cost_of =
    match cost_of with
    | Some f -> f
    | None -> Dynamic.Statesize.graph_cost t.graph
  in
  Obs.with_span ~cat:"deploy" "deploy.replan" (fun () ->
      let outcome =
        Dynamic.Replanner.replan ?pool ?samples ~rates:vars ~budget ~cost_of
          t.problem
          ~assignment:(Rod.Plan.assignment t.plan)
      in
      if not outcome.Dynamic.Replanner.accepted then (t, outcome)
      else begin
        (* The same static gate that admits initial deployments admits
           replans: a model that no longer passes cannot be redeployed. *)
        let analysis =
          Obs.with_span ~cat:"deploy" "deploy.analyze" (fun () ->
              Analysis.Plan_check.check_graph t.graph
                ~caps:t.problem.Rod.Problem.caps)
        in
        Analysis.Plan_check.assert_ok ~what:"replanned deployment" analysis;
        let plan =
          Rod.Plan.make t.problem outcome.Dynamic.Replanner.assignment
        in
        let est = Rod.Plan.volume_qmc plan in
        Obs.Counter.incr obs_deploys;
        Obs.Gauge.set obs_ratio est.Feasible.Volume.ratio;
        ({ t with plan; ratio = est.Feasible.Volume.ratio; analysis }, outcome)
      end)

let probe ?duration t ~rates =
  Dsim.Probe.probe_point ?duration ~graph:t.graph ~assignment:(assignment t)
    ~caps:t.problem.Rod.Problem.caps ~rates ()

let save t ~dir =
  Query.Graph_io.save t.graph ~path:(Filename.concat dir "graph.rodgraph");
  Query.Graph_io.save_assignment (assignment t)
    ~path:(Filename.concat dir "plan.rodplan");
  Query.Graph_dot.save ~assignment:(assignment t) t.graph
    ~path:(Filename.concat dir "plan.dot")

let describe t =
  let buffer = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  out "deployment: %d operators over %d nodes, feasible-set ratio %.3f\n"
    (Rod.Problem.n_ops t.problem)
    (Rod.Problem.n_nodes t.problem)
    t.ratio;
  for node = 0 to Rod.Problem.n_nodes t.problem - 1 do
    out "  node %d: %s\n" node (String.concat ", " (node_roster t node))
  done;
  let s = Rod.Metrics.summary t.plan in
  out "  plane distance r/r* = %.3f, MMAD bound = %.3f\n"
    s.Rod.Metrics.plane_distance_ratio s.Rod.Metrics.mmad_volume_bound;
  Buffer.contents buffer
