(** The one-stop deployment API: everything between "here is my query"
    and "here is which node runs what, and how much headroom you have".

    Three entry points, one result type:
    - {!of_cost_model} — you already have operator costs/selectivities
      (a {!Query.Graph});
    - {!of_network} — you have executable operators ({!Spe.Network});
      they are profiled on your sample data first;
    - {!of_query_file} — you have a query-language source file.

    The resulting deployment carries the resilient plan, its metrics,
    and helpers for capacity questions (expected utilizations, the
    feasibility boundary along a rate direction, a simulation probe). *)

type t = {
  graph : Query.Graph.t;  (** The cost model that was placed. *)
  problem : Rod.Problem.t;
  plan : Rod.Plan.t;
  ratio : float;  (** Feasible-set size vs the ideal (QMC estimate). *)
  network : Spe.Network.t option;
      (** The executable network, when deploying from one. *)
  profile : Spe.Profiler.profile_result option;
      (** Measured costs/selectivities, when profiling happened. *)
  analysis : Analysis.Plan_check.report;
      (** The static-analysis report for the deployed model.  Every
          entry point runs {!Analysis.Plan_check.check_graph} before
          placing and raises [Invalid_argument] on errors
          ({!of_query_file} returns them as [Error]); warnings are
          kept here for inspection. *)
}

val of_cost_model :
  ?polish:bool ->
  ?lower:Linalg.Vec.t ->
  ?samples:int ->
  graph:Query.Graph.t ->
  caps:Linalg.Vec.t ->
  unit ->
  t
(** Place a cost-model graph with ROD ([polish] adds the local-search
    refinement; default false). *)

val of_network :
  ?polish:bool ->
  ?samples:int ->
  ?replays:int ->
  network:Spe.Network.t ->
  sample:Spe.Tuple.t list array ->
  caps:Linalg.Vec.t ->
  unit ->
  t
(** Profile the executable network on [sample] tuples (one
    timestamp-ascending list per input stream), then place the measured
    cost model. *)

val of_query_file :
  ?polish:bool ->
  ?samples:int ->
  ?replays:int ->
  path:string ->
  sample:Spe.Tuple.t list array ->
  caps:Linalg.Vec.t ->
  unit ->
  (t, string) result
(** Compile a query-language file, then proceed as {!of_network}. *)

val assignment : t -> int array

val node_roster : t -> int -> string list
(** Operator names deployed on a node. *)

val expected_utilization : t -> rates:Linalg.Vec.t -> Linalg.Vec.t
(** Per-node utilization predicted at a system rate point (the true
    nonlinear loads are used when the model has introduced variables). *)

val headroom : t -> direction:Linalg.Vec.t -> float
(** Largest multiple of [direction] (a system-rate direction) the plan
    sustains. *)

val replan :
  ?pool:Parallel.Pool.t ->
  ?samples:int ->
  ?budget:int ->
  ?cost_of:(int -> float) ->
  t ->
  rates:Linalg.Vec.t ->
  t * Dynamic.Replanner.outcome
(** Budgeted online replanning at an observed {e system} rate point:
    the rates are mapped through the load model's introduced variables,
    {!Dynamic.Replanner.replan} proposes at most [budget] (default 3)
    migrations priced by [cost_of] (default
    {!Dynamic.Statesize.graph_cost} on the deployed graph), and — when
    the replan is accepted — the static analysis gate re-admits the
    model before the deployment is rebuilt around the new plan.  A
    rejected replan returns the deployment unchanged.  The outcome's
    margins/ratios say why. *)

val probe : ?duration:float -> t -> rates:Linalg.Vec.t -> Dsim.Probe.verdict
(** Confirm a rate point in the discrete-event simulator. *)

val save : t -> dir:string -> unit
(** Write [graph.rodgraph], [plan.rodplan] and [plan.dot] into an
    existing directory. *)

val describe : t -> string
(** Human-readable summary: per-node rosters, metrics, ratio. *)
