(** Rate traces: a stream's arrival rate sampled at a fixed interval.

    Values are rates in tuples/second; [dt] is the sampling interval in
    seconds.  Traces drive both the feasible-set experiments (as
    sequences of workload points) and the discrete-event simulator (as
    time-varying source rates). *)

type t = {
  dt : float; (* rodunits: sim-sec *)
      (** Sampling interval, seconds; positive. *)
  rates : float array;  (** One rate per interval; nonnegative. *)
}

val create : dt:float -> float array -> t
(* rodunits: dt:sim-sec -> _ *)
(** Validates positivity of [dt] and nonnegativity of rates. *)

val length : t -> int

val duration : t -> float
(* rodunits: sim-sec *)
(** [dt * length]. *)

val rate_at : t -> float -> float
(* rodunits: rate *)
(** [rate_at trace time] is the rate of the interval containing [time];
    times past the end clamp to the last interval. *)

val mean_rate : t -> float
(* rodunits: rate *)

val cv : t -> float
(* rodunits: 1 *)
(** Coefficient of variation of the rates (Figure 2's burstiness
    statistic). *)

val normalize : t -> t
(** Rescale to mean rate 1. *)

val scale : float -> t -> t
(** Multiply every rate by a factor. *)

val coarsen : t -> int -> t
(** [coarsen trace k] averages groups of [k] consecutive intervals,
    producing a trace at time-scale [k * dt] (used to examine
    self-similarity across time-scales).  Trailing partial groups are
    dropped. *)

val slice : t -> int -> int -> t
(** [slice trace pos len]. *)

val add : t -> t -> t
(** Interval-wise sum of two traces with equal [dt] and length —
    superimposing workloads (e.g. base load plus a spike train). *)

val concat : t -> t -> t
(** Play one trace after the other (equal [dt] required). *)

val map_rates : (float -> float) -> t -> t
(** Transform every rate (the result must stay nonnegative). *)

val pp_summary : Format.formatter -> t -> unit
