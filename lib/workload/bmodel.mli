(** The b-model: a biased multiplicative cascade that generates
    self-similar, bursty time series (Wang et al., "Data Mining Meets
    Performance Evaluation: Fast Algorithms for Modeling Bursty
    Traffic").

    Starting from the total volume over the whole period, the cascade
    recursively splits each segment's volume between its two halves in
    proportions [bias : 1 - bias], assigning the larger share to a
    uniformly random side.  [bias = 0.5] yields a flat series;
    increasing bias toward 1 increases burstiness at {e every}
    time-scale, which is exactly the self-similar behaviour of the
    paper's PKT/TCP/HTTP traces (Figure 2). *)

val generate :
  rng:Random.State.t -> bias:float -> levels:int -> total:float -> float array
(** [generate ~rng ~bias ~levels ~total] returns [2^levels] nonnegative
    values summing to [total].  Requires [0.5 <= bias < 1.0],
    [0 <= levels <= 24] and [total >= 0]. *)

val trace :
  rng:Random.State.t ->
  bias:float ->
  levels:int ->
  mean_rate:float ->
  dt:float ->
  Trace.t
(** A trace of [2^levels] intervals of length [dt] whose rates average
    [mean_rate]. *)

val cv_of_bias : bias:float -> levels:int -> float
(* rodunits: bias:1 -> 1 *)
(** Analytic coefficient of variation of a b-model series:
    [sqrt ((2 (bias^2 + (1-bias)^2))^levels - 1)] — used to pick a bias
    matching a target burstiness. *)

val bias_for_cv : cv:float -> levels:int -> float
(* rodunits: cv:1 -> 1 *)
(** Inverse of {!cv_of_bias} (bisection on [0.5, 0.999]). *)
