let constant ~n ~dt ~rate = Trace.create ~dt (Array.make n rate)

(* Knuth's product method is fine for the small per-interval means used
   here; fall back to a normal approximation for large means. *)
let poisson_draw rng lambda =
  if lambda <= 0. then 0
  else if lambda < 30. then begin
    let limit = exp (-.lambda) in
    let count = ref 0 in
    let p = ref (Random.State.float rng 1.) in
    while !p > limit do
      incr count;
      p := !p *. Random.State.float rng 1.
    done;
    !count
  end
  else begin
    let u1 = Random.State.float rng 1. and u2 = Random.State.float rng 1. in
    let u1 = if u1 = 0. then epsilon_float else u1 in
    let gauss = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
    max 0 (int_of_float (Float.round (lambda +. (sqrt lambda *. gauss))))
  end

let poisson_counts ~rng ~n ~dt ~mean_rate =
  if mean_rate < 0. then invalid_arg "Generators.poisson_counts: negative rate";
  let rates =
    Array.init n (fun _ ->
        float_of_int (poisson_draw rng (mean_rate *. dt)) /. dt)
  in
  Trace.create ~dt rates

let sinusoid ~n ~dt ~mean_rate ~amplitude ~period =
  if amplitude < 0. || amplitude > 1. then
    invalid_arg "Generators.sinusoid: amplitude outside [0,1]";
  if period <= 0. then invalid_arg "Generators.sinusoid: period <= 0";
  let rates =
    Array.init n (fun i ->
        let t = (float_of_int i +. 0.5) *. dt in
        mean_rate *. (1. +. (amplitude *. sin (2. *. Float.pi *. t /. period))))
  in
  Trace.create ~dt rates

let flash_crowd ~rng ~n ~dt ~base_rate ~spike_prob ~spike_factor ~decay =
  if base_rate < 0. then invalid_arg "Generators.flash_crowd: negative rate";
  if spike_prob < 0. || spike_prob > 1. then
    invalid_arg "Generators.flash_crowd: spike_prob outside [0,1]";
  if spike_factor < 1. then
    invalid_arg "Generators.flash_crowd: spike_factor < 1";
  if decay < 0. || decay >= 1. then
    invalid_arg "Generators.flash_crowd: decay outside [0,1)";
  let boost = ref 0. in
  let rates =
    Array.init n (fun _ ->
        if Random.State.float rng 1. < spike_prob then
          boost := !boost +. ((spike_factor -. 1.) *. base_rate);
        let rate = base_rate +. !boost in
        boost := !boost *. decay;
        rate)
  in
  Trace.create ~dt rates

let poisson_arrivals ~rng ~trace =
  let acc = ref [] in
  let dt = trace.Trace.dt in
  Array.iteri
    (fun i rate ->
      if rate > 0. then begin
        let start = float_of_int i *. dt in
        let t = ref start in
        let finish = start +. dt in
        let rec step () =
          let u = Random.State.float rng 1. in
          let u = if u = 0. then epsilon_float else u in
          t := !t +. (-.log u /. rate);
          if !t < finish then begin
            acc := !t :: !acc;
            step ()
          end
        in
        step ()
      end)
    trace.Trace.rates;
  List.rev !acc

let deterministic_arrivals ~trace =
  let acc = ref [] in
  let dt = trace.Trace.dt in
  Array.iteri
    (fun i rate ->
      let count = int_of_float (Float.round (rate *. dt)) in
      if count > 0 then begin
        let spacing = dt /. float_of_int count in
        let start = float_of_int i *. dt in
        for k = 0 to count - 1 do
          acc := (start +. ((float_of_int k +. 0.5) *. spacing)) :: !acc
        done
      end)
    trace.Trace.rates;
  List.rev !acc

(* --- skewed keyed workloads ------------------------------------------

   Zipf(alpha) over [n_keys] ranks: weight of rank i (1-based) is
   i^-alpha.  The sampler inverts the cumulative distribution with a
   binary search over a precomputed table, so drawing stays O(log
   n_keys) and building the table is one pass — practical at 10^6+
   keys (one float per key). *)

type zipf = { cdf : float array }

let zipf_table ~alpha ~n_keys =
  if n_keys < 1 then invalid_arg "Generators.zipf_table: n_keys must be positive";
  if alpha < 0. then invalid_arg "Generators.zipf_table: alpha must be nonnegative";
  let cdf = Array.make n_keys 0. in
  let acc = ref 0. in
  for i = 0 to n_keys - 1 do
    acc := !acc +. (float_of_int (i + 1) ** -.alpha);
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n_keys - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { cdf }

let zipf_draw ~rng z =
  let u = Random.State.float rng 1. in
  (* smallest index with cdf.(i) >= u *)
  let lo = ref 0 and hi = ref (Array.length z.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let zipf_keys ~rng ~alpha ~n_keys ~n =
  let z = zipf_table ~alpha ~n_keys in
  Array.init n (fun _ -> zipf_draw ~rng z)

let zipf_masses ~alpha ~n_keys ~top =
  let top = min top n_keys in
  let h = ref 0. in
  for i = 1 to n_keys do
    h := !h +. (float_of_int i ** -.alpha)
  done;
  Array.init top (fun i -> float_of_int (i + 1) ** -.alpha /. !h)
