(** Additional rate-trace generators used by the experiments: smooth and
    bursty alternatives to the self-similar {!Bmodel} cascade. *)

val constant : n:int -> dt:float -> rate:float -> Trace.t

val poisson_counts :
  rng:Random.State.t -> n:int -> dt:float -> mean_rate:float -> Trace.t
(** Rates obtained by counting Poisson arrivals per interval: short-term
    noise, no long-range dependence (Hurst ~ 0.5). *)

val sinusoid :
  n:int -> dt:float -> mean_rate:float -> amplitude:float -> period:float ->
  Trace.t
(** Deterministic diurnal-style oscillation:
    [rate(t) = mean * (1 + amplitude * sin (2 pi t / period))]; requires
    [0 <= amplitude <= 1]. *)

val flash_crowd :
  rng:Random.State.t ->
  n:int ->
  dt:float ->
  base_rate:float ->
  spike_prob:float ->
  spike_factor:float ->
  decay:float ->
  Trace.t
(** Baseline rate with random multiplicative spikes that decay
    geometrically by [decay] per interval — the "flash crowd reacting to
    breaking news" pattern of §1. *)

val poisson_arrivals :
  rng:Random.State.t -> trace:Trace.t -> float list
(** Arrival timestamps over the trace duration, drawn from an
    inhomogeneous Poisson process whose intensity is piecewise constant
    at the trace's rates.  Ascending; drives the simulator sources. *)

val deterministic_arrivals : trace:Trace.t -> float list
(** Evenly spaced arrivals within each interval at the interval's rate —
    useful for reproducible simulator tests. *)

(** {2 Skewed keyed workloads} *)

type zipf
(** Precomputed Zipf(alpha) sampling table over ranked keys. *)

val zipf_table : alpha:float -> n_keys:int -> zipf
(** One float per key; practical at [10^6+] keys. *)

val zipf_draw : rng:Random.State.t -> zipf -> int
(** Draw one 0-based key rank (rank 0 is the hottest key) by binary
    search over the table, O(log n_keys). *)

val zipf_keys :
  rng:Random.State.t -> alpha:float -> n_keys:int -> n:int -> int array
(** [n] key ranks drawn i.i.d. from Zipf(alpha) over [n_keys] keys. *)

val zipf_masses : alpha:float -> n_keys:int -> top:int -> float array
(** Exact normalized masses of the [top] hottest keys,
    [masses.(i) = (i+1)^-alpha / H_{n_keys,alpha}]. *)
