(** Synthetic stand-ins for the three Internet Traffic Archive traces of
    Figure 2 (a wide-area packet trace, a wide-area TCP connection trace
    and an HTTP request trace).

    The real traces are not redistributable, so we synthesise
    self-similar series with the b-model cascade, calibrated so that
    each trace's coefficient of variation (the "std" the paper annotates
    in Figure 2) matches the figure's ordering PKT < TCP < HTTP and
    approximate magnitudes.  All traces are normalized to mean rate 1
    and can be rescaled with {!Trace.scale}. *)

type kind =
  | Pkt  (** Wide-area packet trace: mildest variation (cv ~ 0.25). *)
  | Tcp  (** Wide-area TCP connection trace (cv ~ 0.45). *)
  | Http  (** HTTP request trace: burstiest (cv ~ 0.75). *)

val all : kind list

val name : kind -> string

val target_cv : kind -> float
(* rodunits: 1 *)
(** The calibration target for each trace's coefficient of variation. *)

val synthesize :
  ?levels:int -> ?dt:float -> rng:Random.State.t -> kind -> Trace.t
(** A normalized (mean 1) self-similar trace of [2^levels] intervals
    (default [levels = 10], [dt = 1.]). *)

val synthesize_all :
  ?levels:int -> ?dt:float -> rng:Random.State.t -> unit -> (kind * Trace.t) list
