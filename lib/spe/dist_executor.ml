(* rodlint: obs *)
(* rodproto: protocol — pause/drain/resume live migration, mirroring
   Dsim.Engine; role markers below bind the protocol state *)

module Vec = Linalg.Vec
module Graph = Query.Graph
module Event_queue = Dsim.Event_queue
module Samples = Obs.Samples

let obs_runs = Obs.counter ~help:"SPE distributed runs" "rod_spe_runs_total"

let obs_arrivals =
  Obs.counter ~help:"Source tuples injected (measured window)"
    "rod_spe_arrivals_total"

let obs_outputs =
  Obs.counter ~help:"Tuples emitted by sinks (measured window)"
    "rod_spe_outputs_total"

let obs_lost =
  Obs.counter ~help:"Tuples destroyed by injected faults" "rod_spe_lost_total"

type config = {
  net_delay : float;
  warmup : float;
  faults : Dsim.Fault.schedule;
}

let default_config = { net_delay = 1e-3; warmup = 0.; faults = Dsim.Fault.none }

type migration_timing = {
  drain_delay : float;
  handoff_delay : float;
  state_delay : int -> float;
}

let default_timing =
  { drain_delay = 0.05; handoff_delay = 0.3; state_delay = (fun _ -> 0.) }

type result = {
  outputs : (int * Tuple.t) list;
  utilization : float array;
  latencies : Samples.t;
  arrivals : int;
  backlog : int;
  lost : int;
  migrations : int;
  op_stats : Executor.op_run_stat array;
}

let cost_model_of_graph graph op input_idx =
  match (Graph.op graph op).Query.Op.kind with
  | Query.Op.Linear { costs; _ } -> costs.(input_idx)
  | Query.Op.Join { cost_per_pair; _ } -> cost_per_pair
  | Query.Op.Var_selectivity { cost; _ } -> cost

type work_item = {
  op : int;
  input_idx : int;
  tuple : Tuple.t;
  origin : float;  (* event time of the source tuple *)
}

type node_state = {
  capacity : float;
  queue : work_item Queue.t;  (* rodproto: role input-queue *)
  mutable busy : bool;
  mutable busy_time : float;
}

type event =
  | Deliver of work_item
  | Complete of int * work_item * Tuple.t list  (* node, item, outputs *)
  | Migrate of (int * int) list  (* scripted (op, dest) migrations *)
  | Handoff of int  (* drain window closed; rodproto: role drain-event *)
  | Resume of int  (* state transfer finished; rodproto: role resume-event *)
  | Crash_fault of int * int array  (* node dies; switch to recovery *)

let run ~network ~assignment ~caps ~cost ~inputs ?(config = default_config)
    ?(migrations = []) ?(timing = default_timing) ~until () =
  let m = Network.n_ops network in
  let d = Network.n_inputs network in
  let n = Vec.dim caps in
  if Array.length assignment <> m then
    invalid_arg "Dist_executor.run: assignment length";
  Array.iter
    (fun node ->
      if node < 0 || node >= n then
        invalid_arg "Dist_executor.run: bad node index")
    assignment;
  if Array.length inputs <> d then
    invalid_arg "Dist_executor.run: one tuple list per input stream";
  if until <= config.warmup then invalid_arg "Dist_executor.run: until <= warmup";
  if timing.drain_delay < 0. || timing.handoff_delay < 0. then
    invalid_arg "Dist_executor.run: negative migration timing";
  List.iter
    (fun (_, moves) ->
      List.iter
        (fun (op, dest) ->
          if op < 0 || op >= m || dest < 0 || dest >= n then
            invalid_arg "Dist_executor.run: bad migration")
        moves)
    migrations;
  Dsim.Fault.validate ~n_nodes:n ~n_ops:m config.faults;
  let assignment = Array.copy assignment in (* rodproto: role deployed-assignment *)
  let dead = Array.make n false in
  let lost = ref 0 in
  let states = Array.init m (fun j -> Executor.replay_state (Network.op network j)) in
  let stats = Array.init m (fun j -> Executor.replay_stat (Network.op network j)) in
  let nodes =
    Array.init n (fun i ->
        { capacity = caps.(i); queue = Queue.create (); busy = false;
          busy_time = 0. })
  in
  let events = Event_queue.create () in
  let outputs = ref [] in
  let latencies = Samples.create () in
  let arrivals = ref 0 in
  (* Pause–drain–resume migration state, mirroring [Dsim.Engine]:
     operators mid-migration buffer their input; ownership flips only at
     the handoff closing the drain window. *)
  let migrating = Array.make m false in (* rodproto: role paused *)
  let mig_pending = Array.make m (-1) in (* rodproto: role pending *)
  let mig_buffers = Array.init m (fun _ -> Queue.create ()) in (* rodproto: role buffer *)
  let migration_start = Array.make m 0. in
  let migrations_count = ref 0 in
  let measured t = t >= config.warmup && t <= until in
  (* Source tuples arrive at their timestamps. *)
  Array.iteri
    (fun k tuples ->
      let readers = Network.consumers network (Graph.Sys_input k) in
      List.iter
        (fun tuple ->
          let ts = Tuple.ts tuple in
          if ts <= until then begin
            if measured ts then incr arrivals;
            List.iter
              (fun (op, input_idx) ->
                Event_queue.push events ~time:ts
                  (Deliver { op; input_idx; tuple; origin = ts }))
              readers
          end)
        tuples)
    inputs;
  let service item =
    let sop = Network.op network item.op in
    let stat = stats.(item.op) in
    let pairs_before = stat.Executor.pairs in
    let produced =
      Executor.replay_process sop states.(item.op) stat item.input_idx item.tuple
    in
    (* [replay_process] maintains only [pairs]; the consumed/emitted
       counters are the caller's job (as in [Executor.run]'s own loop). *)
    stat.Executor.consumed.(item.input_idx) <-
      stat.Executor.consumed.(item.input_idx) + 1;
    stat.Executor.emitted <- stat.Executor.emitted + List.length produced;
    let cpu =
      match sop with
      | Sop.Equi_join _ ->
        cost item.op item.input_idx
        *. float_of_int (stat.Executor.pairs - pairs_before)
      | _ -> cost item.op item.input_idx
    in
    (cpu, produced)
  in
  let start_service node_idx now =
    let node = nodes.(node_idx) in
    match Queue.take_opt node.queue with
    | None -> node.busy <- false
    | Some item ->
      node.busy <- true;
      let cpu, produced = service item in
      let capacity =
        node.capacity
        *. Dsim.Fault.capacity_factor config.faults ~node:node_idx ~time:now
      in
      let wall = cpu /. capacity in
      let finish = now +. wall in
      let lo = Float.max now config.warmup and hi = Float.min finish until in
      if hi > lo then node.busy_time <- node.busy_time +. (hi -. lo);
      Event_queue.push events ~time:finish (Complete (node_idx, item, produced))
  in
  let deliver now item =
    if migrating.(item.op) then Queue.add item mig_buffers.(item.op)
    else begin
      let node_idx = assignment.(item.op) in
      if dead.(node_idx) then begin
        (* Only a broken recovery still routes here. *)
        if measured now then incr lost
      end
      else begin
        let node = nodes.(node_idx) in
        Queue.add item node.queue;
        if not node.busy then start_service node_idx now
      end
    end
  in
  (* Pause: the operator's queued work moves to its buffer (an
     in-service item finishes on the old node), new input buffers, and
     the drain window opens.  The assignment flips at the [Handoff]. *)
  let start_migration now op dest =
    if (not migrating.(op)) && dest <> assignment.(op) then begin
      let old_queue = nodes.(assignment.(op)).queue in
      let kept = Queue.create () in
      Queue.iter
        (fun item ->
          if item.op = op then Queue.add item mig_buffers.(op)
          else Queue.add item kept)
        old_queue;
      Queue.clear old_queue;
      Queue.transfer kept old_queue;
      migrating.(op) <- true;
      mig_pending.(op) <- dest;
      incr migrations_count;
      migration_start.(op) <- now;
      Event_queue.push events ~time:(now +. timing.drain_delay) (Handoff op)
    end
  in
  let emit now item produced =
    match Network.consumers network (Graph.Op_output item.op) with
    | [] ->
      if measured now then
        List.iter
          (fun t ->
            outputs := (item.op, t) :: !outputs;
            Samples.add latencies (now -. item.origin))
          produced
    | readers ->
      List.iter
        (fun t ->
          List.iter
            (fun (op, input_idx) ->
              let delay =
                if assignment.(op) = assignment.(item.op) then 0.
                else
                  config.net_delay
                  +. Dsim.Fault.extra_delay config.faults ~time:now
              in
              Event_queue.push events ~time:(now +. delay)
                (Deliver { op; input_idx; tuple = t; origin = item.origin }))
            readers)
        produced
  in
  let handle now = function
    | Deliver item -> deliver now item
    | Complete (node_idx, _item, _produced) when dead.(node_idx) ->
      (* The node died mid-service: the item and its outputs are lost.
         Note the semantic state mutation happened at service start, so
         downstream-visible losses are exactly the dropped outputs. *)
      if measured now then incr lost
    | Complete (node_idx, item, produced) ->
      emit now item produced;
      start_service node_idx now
    | Migrate moves ->
      List.iter (fun (op, dest) -> start_migration now op dest) moves
    | Handoff op ->
      (* Flip ownership iff the destination survived the drain window;
         a dead destination aborts the migration and the operator
         resumes wherever the (possibly recovery-remapped) assignment
         says it lives. *)
      let dest = mig_pending.(op) in
      (* rodproto: gated-by Deploy.finish — deployed/replanned plans are gated *)
      if dest >= 0 && not dead.(dest) then assignment.(op) <- dest;
      let pause =
        timing.handoff_delay +. Float.max 0. (timing.state_delay op)
      in
      Event_queue.push events ~time:(now +. pause) (Resume op)
    | Resume op ->
      migrating.(op) <- false;
      mig_pending.(op) <- -1;
      Obs.emit ~cat:"spe"
        ~args:
          [ ("op", string_of_int op); ("to", string_of_int assignment.(op)) ]
        ~ts:migration_start.(op)
        ~dur:(now -. migration_start.(op))
        "spe.migrate";
      let flush = Queue.create () in
      Queue.transfer mig_buffers.(op) flush;
      Queue.iter (fun item -> deliver now item) flush
    | Crash_fault (node_idx, recovery) ->
      dead.(node_idx) <- true;
      let node = nodes.(node_idx) in
      Obs.instant ~cat:"fault" ~ts:now
        ~args:[ ("node", string_of_int node_idx) ]
        "fault.crash";
      if measured now then lost := !lost + Queue.length node.queue;
      Queue.clear node.queue;
      let moved = ref 0 in
      Array.iteri
        (fun j dest -> if dest <> assignment.(j) then incr moved)
        recovery;
      Obs.instant ~cat:"fault" ~ts:now
        ~args:
          [
            ("node", string_of_int node_idx);
            ("ops_moved", string_of_int !moved);
          ]
        "fault.recovery";
      (* rodproto: gated-by Deploy.finish — recovery plans ship gated with the deployment *)
      Array.blit recovery 0 assignment 0 m
  in
  List.iter
    (fun (at, node, recovery) ->
      if at <= until then
        Event_queue.push events ~time:at (Crash_fault (node, recovery)))
    (Dsim.Fault.crashes config.faults);
  List.iter
    (fun (at, moves) ->
      if at <= until then Event_queue.push events ~time:at (Migrate moves))
    migrations;
  let rec loop () =
    match Event_queue.peek_time events with
    | Some t when t <= until -> (
      match Event_queue.pop events with
      | Some (time, event) ->
        handle time event;
        loop ()
      | None -> ())
    | Some _ | None -> ()
  in
  loop ();
  let backlog =
    Array.fold_left (fun acc node -> acc + Queue.length node.queue) 0 nodes
    + Array.fold_left (fun acc buf -> acc + Queue.length buf) 0 mig_buffers
  in
  let span = until -. config.warmup in
  let outputs_count = List.length !outputs in
  Obs.Counter.incr obs_runs;
  Obs.Counter.add obs_arrivals !arrivals;
  Obs.Counter.add obs_outputs outputs_count;
  Obs.Counter.add obs_lost !lost;
  Array.iteri
    (fun i node ->
      let labels = [ ("node", string_of_int i) ] in
      Obs.Gauge.set
        (Obs.gauge ~labels ~help:"Busy fraction over the measured window"
           "rod_spe_node_utilization")
        (node.busy_time /. span);
      Obs.Gauge.set
        (Obs.gauge ~labels ~help:"Work items still queued at run end"
           "rod_spe_node_queue_depth")
        (float_of_int (Queue.length node.queue)))
    nodes;
  Obs.emit ~cat:"spe"
    ~args:
      [
        ("arrivals", string_of_int !arrivals);
        ("outputs", string_of_int outputs_count);
        ("lost", string_of_int !lost);
      ]
    ~ts:0. ~dur:until "spe.run";
  {
    outputs = List.rev !outputs;
    utilization = Array.map (fun node -> node.busy_time /. span) nodes;
    latencies;
    arrivals = !arrivals;
    backlog;
    lost = !lost;
    migrations = !migrations_count;
    op_stats = stats;
  }
