(** Distributed semantic execution: the {!Executor}'s real operator
    semantics combined with the simulator's timing model (serial CPUs
    per node, FIFO queues, fixed network hop delay).

    Where {!Dsim.Engine} abstracts operators into costs and Bernoulli
    selectivity draws, this engine pushes {e actual tuples} through
    {!Sop} operators placed on nodes, charging each tuple the per-tuple
    CPU cost of its operator (costs come from a {!Profiler} run or any
    {!Query.Graph} cost model).  Selectivity and join fan-out emerge
    from the data itself.

    Its purpose is validation: the paper checked its simulator against
    Borealis; we check {!Dsim.Engine} against this engine (experiment
    EXPSPE).  Results carry both the computed output tuples and the
    performance metrics. *)

type config = {
  net_delay : float;  (** One-way hop latency, seconds (default 1 ms). *)
  warmup : float;  (** Metrics ignore events before this time. *)
  faults : Dsim.Fault.schedule;
      (** Injected faults (default none), interpreted exactly as by
          {!Dsim.Engine}: crashes lose the dead node's queued and
          in-service work and switch to the event's recovery assignment;
          slowdowns scale capacity at service start; jitter widens
          inter-node hops emitted inside its window. *)
}

val default_config : config

type migration_timing = {
  drain_delay : float;
      (** Drain window between the pause and the handoff: the old node
          keeps ownership while in-flight tuples settle into the
          operator's buffer. *)
  handoff_delay : float;
      (** Base state-transfer pause after the handoff (the paper's "few
          hundred milliseconds"). *)
  state_delay : int -> float;
      (** Extra per-operator transfer seconds added to [handoff_delay]
          (negative values are clamped to [0]) — e.g. the [rod.dynamic]
          state-size model, so a windowed join pauses longer than a
          stateless filter. *)
}

val default_timing : migration_timing
(** 50 ms drain, 300 ms handoff, zero per-operator state transfer. *)

type result = {
  outputs : (int * Tuple.t) list;  (** Sink outputs, in emission order. *)
  utilization : float array;  (** Per node, within the measured window. *)
  latencies : Obs.Samples.t;
      (** Sink-output latency: completion time minus the event-time of
          the source tuple that triggered it. *)
  arrivals : int;
  backlog : int;  (** Work items unserved at [until]. *)
  lost : int;
      (** Work items destroyed by injected faults (crashed with their
          node or routed to a dead one). *)
  migrations : int;  (** Migrations started (including aborted ones). *)
  op_stats : Executor.op_run_stat array;
      (** Per-operator consumed/emitted/pair counts over the whole run —
          the raw material for the chaos oracles' tuple-conservation
          checks. *)
}

val cost_model_of_graph :
  Query.Graph.t -> int -> int -> float
(** [cost_model_of_graph graph op input_idx] reads per-tuple costs out
    of a cost-model graph (for joins, the per-pair cost). *)

val run :
  network:Network.t ->
  assignment:int array ->
  caps:Linalg.Vec.t ->
  cost:(int -> int -> float) ->
  inputs:Tuple.t list array ->
  ?config:config ->
  ?migrations:(float * (int * int) list) list ->
  ?timing:migration_timing ->
  until:float ->
  unit ->
  result
(** Tuples arrive at their own timestamps (ascending per stream).
    [cost op input_idx] is CPU seconds per tuple (per candidate pair
    for joins).  Open aggregate windows at [until] are counted as
    backlog state, not flushed.

    [migrations] are scripted pause–drain–resume relocations: at each
    [(time, moves)] the listed [(op, dest)] migrations start — the
    operator's queued work moves to a buffer, new input buffers, the
    drain window closes with a handoff flipping ownership (skipped if
    the destination died — the migration aborts), the state transfer
    charges [handoff_delay + state_delay op], and the resume flushes
    the buffer to the operator's current node.  Tuples buffered across
    a migration are processed exactly once; semantic operator state is
    process-global, so a handoff never replays or drops window
    contents. *)
