let packets ~rng ~trace ?(hosts = 16) () =
  let times = Workload.Generators.poisson_arrivals ~rng ~trace in
  let host () = Printf.sprintf "h%02d" (Random.State.int rng hosts) in
  let bytes () =
    (* Bimodal-ish: many small control packets, some full frames. *)
    if Random.State.float rng 1. < 0.6 then 40 + Random.State.int rng 160
    else 500 + Random.State.int rng 1001
  in
  let proto () =
    match Random.State.int rng 10 with
    | 0 -> "icmp"
    | 1 | 2 -> "udp"
    | _ -> "tcp"
  in
  List.map
    (fun ts ->
      Tuple.make ~ts
        [
          ("src", Value.Str (host ()));
          ("dst", Value.Str (host ()));
          ("bytes", Value.Int (bytes ()));
          ("proto", Value.Str (proto ()));
        ])
    times

let default_symbols = [ "ACME"; "GLOBO"; "INITECH"; "UMBRL"; "WAYNE"; "STARK" ]

let trades ~rng ~trace ?(symbols = default_symbols) () =
  if symbols = [] then invalid_arg "Datagen.trades: no symbols";
  let times = Workload.Generators.poisson_arrivals ~rng ~trace in
  let arr = Array.of_list symbols in
  let prices = Array.map (fun _ -> 50. +. Random.State.float rng 100.) arr in
  List.map
    (fun ts ->
      let i = Random.State.int rng (Array.length arr) in
      (* Multiplicative random walk keeps prices positive. *)
      prices.(i) <- prices.(i) *. (1. +. ((Random.State.float rng 0.02) -. 0.01));
      Tuple.make ~ts
        [
          ("symbol", Value.Str arr.(i));
          ("price", Value.Float prices.(i));
          ("qty", Value.Int (1 + Random.State.int rng 500));
        ])
    times

let ticks ~rate ~duration f =
  if rate <= 0. || duration <= 0. then invalid_arg "Datagen.ticks: bad rate/duration";
  (* Round, don't truncate: [4.1 * 10.] is 40.999…, and flooring it
     would silently drop the last tick of the stream. *)
  let count = int_of_float (Float.round (rate *. duration)) in
  List.init count (fun i ->
      let ts = (float_of_int i +. 0.5) /. rate in
      f ts)
