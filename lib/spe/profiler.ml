type op_profile = {
  cost : float;
  selectivity : float;
  consumed : int;
  emitted : int;
  pairs : int;
}

type profile_result = {
  graph : Query.Graph.t;
  run : Executor.result;
  per_op : op_profile array;
}

let placeholder_cost = 1e-6

(* Wall-clock of replaying one operator's recorded input log [replays]
   times over fresh state.  The throwaway stat keeps [process]'s
   signature happy without polluting the measured run's counters.
   The [Unix.gettimeofday] reads below are the repo's one sanctioned
   use of the wall clock (rodlint.allow: determinism/wallclock) —
   measuring real elapsed time is exactly what a profiler is for. *)
let time_replays sop log replays =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to replays do
    let state = Executor.replay_state sop in
    let stat = Executor.replay_stat sop in
    List.iter
      (fun (input_idx, tuple) ->
        ignore (Executor.replay_process sop state stat input_idx tuple))
      log
  done;
  Unix.gettimeofday () -. t0

let profile ?(replays = 20) network ~inputs =
  if replays < 1 then invalid_arg "Profiler.profile: replays < 1";
  let run = Executor.run ~record:true network ~inputs in
  let logs =
    match run.Executor.recorded with Some l -> l | None -> assert false
  in
  let m = Network.n_ops network in
  let per_op =
    Array.init m (fun j ->
        let sop = Network.op network j in
        let stat = run.Executor.stats.(j) in
        let consumed = Array.fold_left ( + ) 0 stat.Executor.consumed in
        let emitted = stat.Executor.emitted in
        let pairs = stat.Executor.pairs in
        let divisor =
          match sop with Sop.Equi_join _ -> pairs | _ -> consumed
        in
        let cost =
          if divisor = 0 then placeholder_cost
          else
            let elapsed = time_replays sop logs.(j) replays in
            elapsed /. float_of_int (replays * divisor)
        in
        let selectivity =
          if divisor = 0 then 1.
          else float_of_int emitted /. float_of_int divisor
        in
        { cost; selectivity; consumed; emitted; pairs })
  in
  let cost_op j =
    let sop = Network.op network j in
    let p = per_op.(j) in
    match sop with
    | Sop.Filter _ | Sop.Map _ | Sop.Project _ | Sop.Distinct _ ->
      Query.Op.filter ~name:(Sop.name sop) ~cost:p.cost ~sel:p.selectivity ()
    | Sop.Aggregate _ ->
      Query.Op.aggregate ~name:(Sop.name sop) ~cost:p.cost ~sel:p.selectivity ()
    | Sop.Union { arity; _ } ->
      Query.Op.union ~name:(Sop.name sop) ~cost:p.cost ~n_inputs:arity ()
    | Sop.Equi_join { window; _ } ->
      Query.Op.join ~name:(Sop.name sop) ~window ~cost_per_pair:p.cost
        ~sel:p.selectivity ()
  in
  let graph =
    Query.Graph.create
      ~n_inputs:(Network.n_inputs network)
      ~ops:(List.init m (fun j -> (cost_op j, Network.sources network j)))
      ()
  in
  { graph; run; per_op }

(* Same sanctioned wall-clock read, packaged as an injectable telemetry
   clock (see the note above time_replays). *)
let wall_clock = Obs.Clock.of_fun Unix.gettimeofday
