(** From a running network to a cost model — the §7.1 methodology on a
    {e real} engine rather than the simulator: execute the network on
    sample data, measure each operator's selectivity from exact
    input/output counts and its per-tuple CPU cost by replaying its
    recorded input log in a timing loop, and emit the {!Query.Graph}
    that ROD plans on.

    Costs are wall-clock per tuple on the current machine, so absolute
    values vary between hosts; placement only depends on their
    {e ratios}, which are stable. *)

type op_profile = {
  cost : float;
      (** Measured CPU seconds per input tuple (per candidate pair for
          joins). *)
  selectivity : float;
      (** Output tuples per input tuple (per candidate pair for joins). *)
  consumed : int;  (** Tuples observed during the sample run. *)
  emitted : int;
  pairs : int;  (** Joins only: candidate pairs examined. *)
}

type profile_result = {
  graph : Query.Graph.t;
      (** Cost-model graph with measured parameters (operators that saw
          no tuples keep placeholder values). *)
  run : Executor.result;  (** The sample run itself (outputs, counts). *)
  per_op : op_profile array;
}

val profile :
  ?replays:int -> Network.t -> inputs:Tuple.t list array -> profile_result
(** [replays] (default 20) controls how many times each operator's
    recorded input is re-executed for timing; more replays, steadier
    costs. *)

val wall_clock : Obs.Clock.t
(** Real elapsed time as an observability clock.  [Obs.set_clock
    wall_clock] trades deterministic telemetry for true durations; the
    underlying [Unix.gettimeofday] lives here because this module owns
    the repo's sanctioned wall-clock reads (rodlint.allow:
    determinism/wallclock). *)
