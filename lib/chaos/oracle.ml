(* rodlint: deterministic *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Graph = Query.Graph
module Problem = Rod.Problem
module Metrics = Dsim.Sim_metrics

type check = {
  name : string;
  passed : bool;
  detail : string;
}

type verdict = check list

let passed v = List.for_all (fun c -> c.passed) v

let pp fmt v =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i c ->
      if i > 0 then Format.fprintf fmt "@,";
      Format.fprintf fmt "[%s] %s: %s"
        (if c.passed then "pass" else "FAIL")
        c.name c.detail)
    v;
  Format.fprintf fmt "@]"

let check name passed detail = { name; passed; detail }

let custom ~name ~passed ~detail = check name passed detail

(* Shared body of both conservation oracles: [produced] maps a stream to
   its total tuple count, [consumed] an (operator, arc) to what the
   operator took from it.  Flow on every arc obeys
   [consumed <= produced]; a drained run leaves nothing in between. *)
let conservation_checks ~drained ~tag ~n_ops ~sources ~produced ~consumed =
  let checks = ref [] in
  for v = n_ops - 1 downto 0 do
    List.iteri
      (fun i s ->
        let avail = produced s in
        let got = consumed v i in
        let ok = if drained then got = avail else got <= avail in
        checks :=
          check
            (Printf.sprintf "%s:op%d.%d" tag v i)
            ok
            (Printf.sprintf "consumed %d %s produced %d" got
               (if drained then "=" else "<=")
               avail)
          :: !checks)
      (sources v)
  done;
  !checks

let conservation ?(drained = false) ~graph ~injected metrics =
  let emitted_total u =
    Array.fold_left ( + ) 0 metrics.Metrics.op_stats.(u).Metrics.emitted
  in
  let produced = function
    | Graph.Sys_input k -> injected.(k)
    | Graph.Op_output u -> emitted_total u
  in
  let consumed v i = metrics.Metrics.op_stats.(v).Metrics.consumed.(i) in
  let flow =
    conservation_checks ~drained ~tag:"conserve" ~n_ops:(Graph.n_ops graph)
      ~sources:(Graph.sources graph) ~produced ~consumed
  in
  if not drained then flow
  else
    check "conserve:drained"
      (metrics.Metrics.backlog = 0 && metrics.Metrics.lost = 0
      && metrics.Metrics.dropped = 0)
      (Printf.sprintf "backlog %d lost %d dropped %d" metrics.Metrics.backlog
         metrics.Metrics.lost metrics.Metrics.dropped)
    :: flow

let conservation_spe ?(drained = false) ~network ~injected
    (result : Spe.Dist_executor.result) =
  let produced = function
    | Graph.Sys_input k -> injected.(k)
    | Graph.Op_output u -> result.Spe.Dist_executor.op_stats.(u).Spe.Executor.emitted
  in
  let consumed v i =
    result.Spe.Dist_executor.op_stats.(v).Spe.Executor.consumed.(i)
  in
  let flow =
    conservation_checks ~drained ~tag:"conserve-spe"
      ~n_ops:(Spe.Network.n_ops network) ~sources:(Spe.Network.sources network)
      ~produced ~consumed
  in
  if not drained then flow
  else
    check "conserve-spe:drained"
      (result.Spe.Dist_executor.backlog = 0 && result.Spe.Dist_executor.lost = 0)
      (Printf.sprintf "backlog %d lost %d" result.Spe.Dist_executor.backlog
         result.Spe.Dist_executor.lost)
    :: flow

(* Multiset difference of two sink-output lists restricted to outputs
   timestamped [<= cutoff]: how many of [want] are absent from [got]
   ([missing]) and how many of [got] have no counterpart in [want]
   ([extra]), plus the two restricted cardinalities. *)
let multiset_diff ~cutoff ~want ~got =
  let key (op, t) = Format.asprintf "%d|%a" op Spe.Tuple.pp t in
  let keep (_, t) = Spe.Tuple.ts t <= cutoff in
  let want = List.filter keep want in
  let got = List.filter keep got in
  let counts = Hashtbl.create 256 in
  List.iter
    (fun o ->
      let k = key o in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    want;
  let extra = ref 0 in
  List.iter
    (fun o ->
      let k = key o in
      match Hashtbl.find_opt counts k with
      | Some c when c > 0 -> Hashtbl.replace counts k (c - 1)
      | _ -> incr extra)
    got;
  let missing = Hashtbl.fold (fun _ c acc -> acc + max 0 c) counts 0 in
  (List.length want, List.length got, missing, !extra)

let sink_multiset ~mode ~cutoff ~(logical : Spe.Executor.result)
    ~(dist : Spe.Dist_executor.result) =
  let n_want, n_got, missing, extra =
    multiset_diff ~cutoff ~want:logical.Spe.Executor.outputs
      ~got:dist.Spe.Dist_executor.outputs
  in
  let name, ok =
    match mode with
    | `Equal -> ("sink-multiset:equal", extra = 0 && missing = 0)
    | `Subset -> ("sink-multiset:subset", extra = 0)
  in
  check name ok
    (Printf.sprintf "logical %d dist %d (missing %d, extra %d) at ts <= %g"
       n_want n_got missing extra cutoff)

let migration_differential ?(drained = true) ~network ~injected ~cutoff
    ~(migrated : Spe.Dist_executor.result)
    ~(baseline : Spe.Dist_executor.result) () =
  (* Per-arc flow on the migrated run.  [consumed <= produced] is
     exactly the no-reprocess law: a tuple buffered across a
     pause–drain–resume handoff must be consumed at most once; a
     drained run must consume it exactly once. *)
  let flow =
    let produced = function
      | Graph.Sys_input k -> injected.(k)
      | Graph.Op_output u ->
        migrated.Spe.Dist_executor.op_stats.(u).Spe.Executor.emitted
    in
    let consumed v i =
      migrated.Spe.Dist_executor.op_stats.(v).Spe.Executor.consumed.(i)
    in
    conservation_checks ~drained ~tag:"migrate"
      ~n_ops:(Spe.Network.n_ops network)
      ~sources:(Spe.Network.sources network) ~produced ~consumed
  in
  let n_want, n_got, missing, extra =
    multiset_diff ~cutoff ~want:baseline.Spe.Dist_executor.outputs
      ~got:migrated.Spe.Dist_executor.outputs
  in
  let sink =
    if drained then
      check "migrate:sink-equal"
        (missing = 0 && extra = 0)
        (Printf.sprintf
           "baseline %d migrated %d (missing %d, extra %d) at ts <= %g" n_want
           n_got missing extra cutoff)
    else
      check "migrate:sink-subset" (extra = 0)
        (Printf.sprintf "baseline %d migrated %d (extra %d) at ts <= %g"
           n_want n_got extra cutoff)
  in
  let consumed_eq =
    if not drained then []
    else begin
      (* Both drained runs saw every tuple exactly once, so per-arc
         consumption must agree with the never-migrated execution. *)
      let mismatches = ref 0 and arcs = ref 0 in
      Array.iteri
        (fun v (st : Spe.Executor.op_run_stat) ->
          let base = baseline.Spe.Dist_executor.op_stats.(v) in
          Array.iteri
            (fun i c ->
              incr arcs;
              if c <> base.Spe.Executor.consumed.(i) then incr mismatches)
            st.Spe.Executor.consumed)
        migrated.Spe.Dist_executor.op_stats;
      [
        check "migrate:consumed-eq" (!mismatches = 0)
          (Printf.sprintf "%d/%d arcs differ from the never-migrated run"
             !mismatches !arcs);
      ]
    end
  in
  let drained_checks =
    if not drained then []
    else
      [
        check "migrate:drained"
          (migrated.Spe.Dist_executor.backlog = 0
          && migrated.Spe.Dist_executor.lost = 0)
          (Printf.sprintf "backlog %d lost %d"
             migrated.Spe.Dist_executor.backlog migrated.Spe.Dist_executor.lost);
      ]
  in
  let moved =
    check "migrate:count"
      (migrated.Spe.Dist_executor.migrations > 0)
      (Printf.sprintf "migrations started: %d"
         migrated.Spe.Dist_executor.migrations)
  in
  (moved :: drained_checks) @ flow @ (sink :: consumed_eq)

let latency_not_improved ?(tol = 0.05) ~healthy ~faulted () =
  let count m = Metrics.Samples.count m.Metrics.latencies in
  if count healthy = 0 || count faulted = 0 then
    check "latency-monotone" true
      (Printf.sprintf "skipped: %d healthy / %d faulted latency samples"
         (count healthy) (count faulted))
  else
    let mean m = Metrics.mean_latency m in
    let p99 m = Metrics.Samples.percentile m.Metrics.latencies 99. in
    let floor x = (1. -. tol) *. x in
    let ok =
      mean faulted >= floor (mean healthy)
      && p99 faulted >= floor (p99 healthy)
    in
    check "latency-monotone" ok
      (Printf.sprintf
         "mean %.6f vs healthy %.6f, p99 %.6f vs healthy %.6f (tol %g%%)"
         (mean faulted) (mean healthy) (p99 faulted) (p99 healthy)
         (100. *. tol))

let recovery_valid ~dead ~before ~recovery =
  let m = Array.length before in
  if Array.length recovery <> m then
    invalid_arg "Oracle.recovery_valid: assignment lengths differ";
  let bad_node = ref [] and moved = ref [] in
  for j = m - 1 downto 0 do
    let n = Array.length dead in
    if recovery.(j) < 0 || recovery.(j) >= n || dead.(recovery.(j)) then
      bad_node := j :: !bad_node;
    if (not dead.(before.(j))) && recovery.(j) <> before.(j) then
      moved := j :: !moved
  done;
  let show = function
    | [] -> "none"
    | js -> String.concat "," (List.map string_of_int js)
  in
  [
    check "recovery:live" (!bad_node = [])
      (Printf.sprintf "operators on dead/invalid nodes: %s" (show !bad_node));
    check "recovery:survivors-pinned" (!moved = [])
      (Printf.sprintf "survivors moved: %s" (show !moved));
  ]

(* Estimate a (possibly degraded) plan's volume over the ORIGINAL ideal
   simplex: a phantom node carries the dead capacity with a zero load
   row, so the simplex keeps [C_T] while feasibility is checked against
   the degraded cluster (dead capacities zeroed).  Re-sampling the
   degraded simplex would make the capacity bound a tautology; this way
   the estimates of healthy and degraded plans share one denominator. *)
let degraded_volume ?pool ?(samples = 4096) ~problem ~assignment ~dead () =
  let n = Problem.n_nodes problem in
  let d = Problem.dim problem in
  let loads = Rod.Plan.node_loads (Rod.Plan.make problem assignment) in
  let c_dead = ref 0. in
  Array.iteri
    (fun i dd -> if dd then c_dead := !c_dead +. problem.Problem.caps.(i))
    dead;
  let ln =
    Mat.init (n + 1) d (fun i k -> if i = n then 0. else Mat.get loads i k)
  in
  let caps =
    Vec.init (n + 1) (fun i ->
        if i = n then !c_dead
        else if dead.(i) then 0.
        else problem.Problem.caps.(i))
  in
  Feasible.Volume.ratio_qmc ?pool ~ln ~caps ~samples ()

let crash_volume_bounds ?pool ?(samples = 4096) ~problem ~schedule () =
  let n = Problem.n_nodes problem in
  let d = Problem.dim problem in
  let c_total = Problem.total_capacity problem in
  let dead = Array.make n false in
  List.map
    (fun (at, node, recovery) ->
      dead.(node) <- true;
      let est =
        degraded_volume ?pool ~samples ~problem ~assignment:recovery ~dead ()
      in
      let c_dead =
        Array.to_list dead
        |> List.mapi (fun i dd -> if dd then problem.Problem.caps.(i) else 0.)
        |> List.fold_left ( +. ) 0.
      in
      let bound = ((c_total -. c_dead) /. c_total) ** float_of_int d in
      let slack = (3. *. est.Feasible.Volume.std_error) +. 1e-9 in
      check
        (Printf.sprintf "volume-bound:crash@%g" at)
        (est.Feasible.Volume.ratio <= bound +. slack)
        (Printf.sprintf "ratio %.4f <= (C_live/C_T)^%d = %.4f (+%.4f QMC slack)"
           est.Feasible.Volume.ratio d bound slack))
    (Dsim.Fault.crashes schedule)

let replay_identical ~name ~run =
  let a = run () in
  let b = run () in
  check name (String.equal a b)
    (if String.equal a b then
       Printf.sprintf "two runs byte-identical (%d chars)" (String.length a)
     else "runs diverged")

(* --- keyed split differential ----------------------------------------

   Pin a split-operator run against the unsplit baseline.  Sink
   comparison maps every appended operator (route filters, replicas,
   merger) back to the split operator's original index, so the two
   networks' sink multisets are directly comparable.  The per-key laws
   need tuple-level logs, so they run on the logical engine's recorded
   run: every tuple a replica consumed must belong to a key the
   partitioner routes to it (a corrupted per-replica route table trips
   this), and per key, the replicas together must consume exactly what
   the splitter emitted — no key lost, none duplicated. *)

let split_differential ?(drained = true) ~(split : Keyed.Semantic.t) ~injected
    ~cutoff ~(split_dist : Spe.Dist_executor.result)
    ~(baseline_dist : Spe.Dist_executor.result)
    ~(logical : Spe.Executor.result) () =
  let network = split.Keyed.Semantic.network in
  let part = split.Keyed.Semantic.partitioner in
  let key_of = split.Keyed.Semantic.key_of in
  let replica_ops = split.Keyed.Semantic.replica_ops in
  let k = Array.length replica_ops in
  let m = Spe.Network.n_ops split.Keyed.Semantic.original in
  (* flow conservation per arc of the split network *)
  let produced = function
    | Graph.Sys_input i -> injected.(i)
    | Graph.Op_output u ->
      split_dist.Spe.Dist_executor.op_stats.(u).Spe.Executor.emitted
  in
  let consumed v i =
    split_dist.Spe.Dist_executor.op_stats.(v).Spe.Executor.consumed.(i)
  in
  let flow =
    conservation_checks ~drained ~tag:"split" ~n_ops:(Spe.Network.n_ops network)
      ~sources:(Spe.Network.sources network) ~produced ~consumed
  in
  (* sink multisets, appended operators mapped back to the split op *)
  let map_out (o, t) =
    ((if o >= m then split.Keyed.Semantic.op else o), t)
  in
  let n_want, n_got, missing, extra =
    multiset_diff ~cutoff ~want:baseline_dist.Spe.Dist_executor.outputs
      ~got:(List.map map_out split_dist.Spe.Dist_executor.outputs)
  in
  let sink =
    if drained then
      check "split:sink-equal" (missing = 0 && extra = 0)
        (Printf.sprintf
           "unsplit %d split %d (missing %d, extra %d) at ts <= %g" n_want
           n_got missing extra cutoff)
    else
      check "split:sink-subset" (extra = 0)
        (Printf.sprintf
           "unsplit %d split %d (extra %d) at ts <= %g" n_want n_got extra
           cutoff)
  in
  (* per-key routing and coverage on the recorded logical run *)
  let keyed =
    match logical.Spe.Executor.recorded with
    | None ->
      [
        check "split:recorded" false
          "logical run carries no recorded logs (run with ~record:true)";
      ]
    | Some logs ->
      let misrouted = ref 0 and replica_tuples = ref 0 in
      let counts_out = Hashtbl.create 64 in
      Array.iteri
        (fun r op ->
          List.iter
            (fun (_, tu) ->
              incr replica_tuples;
              let key = key_of tu in
              if Keyed.Partitioner.route part key <> r then incr misrouted;
              Hashtbl.replace counts_out key
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts_out key)))
            logs.(op))
        replica_ops;
      let counts_in = Hashtbl.create 64 in
      let order = ref [] in
      List.iter
        (fun (_, tu) ->
          let key = key_of tu in
          if not (Hashtbl.mem counts_in key) then order := key :: !order;
          Hashtbl.replace counts_in key
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts_in key)))
        logs.(split.Keyed.Semantic.route_filters.(0));
      let mismatched = ref 0 and splitter_tuples = ref 0 in
      List.iter
        (fun key ->
          let inc = Option.value ~default:0 (Hashtbl.find_opt counts_in key) in
          let out = Option.value ~default:0 (Hashtbl.find_opt counts_out key) in
          splitter_tuples := !splitter_tuples + inc;
          if inc <> out then incr mismatched)
        (List.rev !order);
      [
        check "split:routing" (!misrouted = 0)
          (Printf.sprintf "%d of %d replica-consumed tuples off-route"
             !misrouted !replica_tuples);
        check "split:coverage" (!mismatched = 0)
          (Printf.sprintf
             "%d keys with replica consumption <> splitter emission (%d \
              splitter tuples, %d replica tuples)"
             !mismatched !splitter_tuples !replica_tuples);
      ]
  in
  let used =
    Array.fold_left
      (fun acc op ->
        let stat = split_dist.Spe.Dist_executor.op_stats.(op) in
        if Array.fold_left ( + ) 0 stat.Spe.Executor.consumed > 0 then acc + 1
        else acc)
      0 replica_ops
  in
  (flow
  @ [
      sink;
      check "split:replicas-used" (used >= 2)
        (Printf.sprintf "%d of %d replicas consumed tuples" used k);
    ]
  @ keyed)
