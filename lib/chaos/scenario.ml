module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Fault = Dsim.Fault
module Metrics = Dsim.Sim_metrics
module Sop = Spe.Sop
module Tuple = Spe.Tuple
module Value = Spe.Value
module Graph = Query.Graph

type outcome = {
  schedule : Fault.schedule;
  healthy : Metrics.t;
  faulted : Metrics.t;
  dist : Spe.Dist_executor.result option;
  verdict : Oracle.verdict;
}

type t = {
  id : string;
  name : string;
  run : ?quick:bool -> seed:int -> unit -> outcome;
}

let describe o =
  Format.asprintf "@[<v>schedule:@,%a@,healthy:@,%a@,faulted:@,%a@,%tverdict:@,%a@]"
    Fault.pp o.schedule Metrics.pp o.healthy Metrics.pp o.faulted
    (fun fmt ->
      match o.dist with
      | None -> ()
      | Some d ->
        Format.fprintf fmt "dist: outputs %d backlog %d lost %d@,"
          (List.length d.Spe.Dist_executor.outputs)
          d.Spe.Dist_executor.backlog d.Spe.Dist_executor.lost)
    Oracle.pp o.verdict

(* ------------------------------------------------------------------ *)
(* Fixture: a loss-monotone network (filters, map, project, union — no
   operator whose output can GROW when inputs are lost), so the
   crashed-run sink outputs must be a sub-multiset of the fault-free
   logical run's.  Costs come from the skeleton graph, not the
   profiler: profiled costs are wall-clock measurements and would break
   byte-replay determinism. *)

let n_nodes = 4

let network () =
  Spe.Network.create ~n_inputs:2
    ~ops:
      [
        ( Sop.filter ~name:"cleanA" (fun t ->
              Value.to_string (Tuple.find t "proto") <> "icmp"),
          [ Graph.Sys_input 0 ] );
        (Sop.map ~name:"tagA" (fun t -> t), [ Graph.Op_output 0 ]);
        ( Sop.filter ~name:"cleanB" (fun t ->
              Value.to_string (Tuple.find t "proto") <> "icmp"),
          [ Graph.Sys_input 1 ] );
        (Sop.project ~name:"slimB" [ "src"; "bytes" ], [ Graph.Op_output 2 ]);
        ( Sop.union ~name:"merge" ~arity:2 (),
          [ Graph.Op_output 1; Graph.Op_output 3 ] );
        ( Sop.filter ~name:"big" (fun t -> Tuple.number t "bytes" >= 100.),
          [ Graph.Op_output 4 ] );
      ]
    ()

type fixture = {
  network : Spe.Network.t;
  graph : Graph.t;
  problem : Rod.Problem.t;
  assignment : int array;
  caps : Vec.t;
  inputs : Tuple.t list array;
  arrivals : float list array;
  injected : int array;
  last_ts : float;
  horizon : float;
  until : float;
}

let fixture ?(storm_factor = 0.) ?(slack = 4.) ~quick ~seed () =
  let rng = Random.State.make [| seed; 0xC4A05 |] in
  let horizon = if quick then 8. else 30. in
  let rate = if quick then 80. else 150. in
  let base =
    Workload.Trace.create ~dt:1. (Array.make (int_of_float horizon) rate)
  in
  let trace =
    if storm_factor > 0. then Inject.storm ~rng ~factor:storm_factor base
    else base
  in
  let inputs =
    [|
      Spe.Datagen.packets ~rng ~trace ~hosts:10 ();
      Spe.Datagen.packets ~rng ~trace ~hosts:10 ();
    |]
  in
  let network = network () in
  let graph = Spe.Network.skeleton ~costs:(fun _ -> 2e-4) network in
  let problem =
    Rod.Problem.of_graph graph
      ~caps:(Rod.Problem.homogeneous_caps ~n:n_nodes ~cap:1.)
  in
  let assignment = Rod.Rod_algorithm.place problem in
  (* Scale node capacities so the predicted hottest node runs at 60% of
     capacity at the base rate — enough headroom to drain, enough load
     for faults to show in the latency distribution. *)
  let model = Query.Load_model.derive graph in
  let vars =
    Query.Load_model.eval_vars model ~sys_rates:(Vec.of_list [ rate; rate ])
  in
  let ln = Rod.Plan.node_loads (Rod.Plan.make problem assignment) in
  let predicted =
    Vec.max_elt (Vec.init n_nodes (fun i -> Vec.dot (Mat.row ln i) vars))
  in
  let caps = Vec.create n_nodes (Float.max 1e-9 (predicted /. 0.6)) in
  (* A chaos fixture that fails static analysis would chase faults in a
     plan no deployment path accepts; reject it up front. *)
  Analysis.Plan_check.assert_ok ~what:"chaos fixture"
    (Analysis.Plan_check.check_model model ~caps);
  let arrivals = Array.map (List.map Tuple.ts) inputs in
  let injected = Array.map List.length inputs in
  let last_ts =
    Array.fold_left
      (List.fold_left (fun acc t -> Float.max acc (Tuple.ts t)))
      0. inputs
  in
  {
    network;
    graph;
    problem;
    assignment;
    caps;
    inputs;
    arrivals;
    injected;
    last_ts;
    horizon;
    until = horizon +. slack;
  }

let engine_run ?dynamic fx ~faults =
  Dsim.Engine.run ~graph:fx.graph ~assignment:fx.assignment ~caps:fx.caps
    ~arrivals:fx.arrivals
    ~config:{ Dsim.Engine.default_config with faults }
    ?dynamic ~until:fx.until ()

let dist_run ?(migrations = []) ?timing fx ~faults =
  Spe.Dist_executor.run ~network:fx.network ~assignment:fx.assignment
    ~caps:fx.caps
    ~cost:(Spe.Dist_executor.cost_model_of_graph fx.graph)
    ~inputs:fx.inputs
    ~config:{ Spe.Dist_executor.default_config with faults }
    ~migrations ?timing ~until:fx.until ()

let volume_samples ~quick = if quick then 2048 else 8192

(* Walk the schedule's crashes in order, validating each chained
   recovery against the assignment it supersedes. *)
let recovery_checks ~assignment ~schedule =
  let dead = Array.make n_nodes false in
  let current = ref assignment in
  List.concat_map
    (fun (_, node, recovery) ->
      dead.(node) <- true;
      let checks = Oracle.recovery_valid ~dead ~before:!current ~recovery in
      current := recovery;
      checks)
    (Fault.crashes schedule)

(* ------------------------------------------------------------------ *)
(* Scenario cores.  Each core is a pure function of (quick, seed); the
   [replay] check runs the core twice and compares renderings, so the
   published outcome is the first of those two executions. *)

let healthy_core ~quick ~seed =
  let fx = fixture ~quick ~seed () in
  let healthy = engine_run fx ~faults:Fault.none in
  let dist = dist_run fx ~faults:Fault.none in
  let logical = Spe.Executor.run fx.network ~inputs:fx.inputs in
  let verdict =
    Oracle.conservation ~drained:true ~graph:fx.graph ~injected:fx.injected
      healthy
    @ Oracle.conservation_spe ~drained:true ~network:fx.network
        ~injected:fx.injected dist
    @ [ Oracle.sink_multiset ~mode:`Equal ~cutoff:fx.last_ts ~logical ~dist ]
  in
  { schedule = Fault.none; healthy; faulted = healthy; dist = Some dist; verdict }

let crash_core ~quick ~seed =
  let fx = fixture ~quick ~seed () in
  let rng = Random.State.make [| seed; 0xFA17 |] in
  let spec = { Inject.default with crashes = 2 } in
  let schedule =
    Inject.schedule ~rng ~spec ~problem:fx.problem ~assignment:fx.assignment
      ~horizon:fx.horizon
  in
  let healthy = engine_run fx ~faults:Fault.none in
  let faulted = engine_run fx ~faults:schedule in
  let dist = dist_run fx ~faults:schedule in
  let logical = Spe.Executor.run fx.network ~inputs:fx.inputs in
  (* No latency-monotonicity check here: losing a node consolidates
     operators, which can legitimately REMOVE network hops from the sink
     path — crash latency is not monotone, only delay faults are. *)
  let verdict =
    Oracle.conservation ~graph:fx.graph ~injected:fx.injected faulted
    @ Oracle.conservation_spe ~network:fx.network ~injected:fx.injected dist
    @ recovery_checks ~assignment:fx.assignment ~schedule
    @ Oracle.crash_volume_bounds
        ~samples:(volume_samples ~quick)
        ~problem:fx.problem ~schedule ()
    @ [ Oracle.sink_multiset ~mode:`Subset ~cutoff:fx.last_ts ~logical ~dist ]
  in
  { schedule; healthy; faulted; dist = Some dist; verdict }

(* Shared body of the two pure-delay scenarios (stragglers, jitter):
   no tuple is ever lost, so the drained-equality oracles must still
   hold and latency can only get worse. *)
let delay_core ~spec ~salt ~quick ~seed =
  let fx = fixture ~quick ~seed () in
  let rng = Random.State.make [| seed; salt |] in
  let schedule =
    Inject.schedule ~rng ~spec ~problem:fx.problem ~assignment:fx.assignment
      ~horizon:fx.horizon
  in
  let healthy = engine_run fx ~faults:Fault.none in
  let faulted = engine_run fx ~faults:schedule in
  let dist = dist_run fx ~faults:schedule in
  let logical = Spe.Executor.run fx.network ~inputs:fx.inputs in
  let verdict =
    Oracle.conservation ~drained:true ~graph:fx.graph ~injected:fx.injected
      faulted
    @ Oracle.conservation_spe ~drained:true ~network:fx.network
        ~injected:fx.injected dist
    @ [
        Oracle.sink_multiset ~mode:`Equal ~cutoff:fx.last_ts ~logical ~dist;
        Oracle.latency_not_improved ~healthy ~faulted ();
      ]
  in
  { schedule; healthy; faulted; dist = Some dist; verdict }

let straggler_core =
  delay_core ~salt:0x57A6
    ~spec:{ Inject.default with crashes = 0; stragglers = 2 }

let jitter_core =
  delay_core ~salt:0x7177 ~spec:{ Inject.default with crashes = 0; jitters = 2 }

let storm_core ~quick ~seed =
  let base = fixture ~slack:10. ~quick ~seed () in
  let stormy = fixture ~storm_factor:0.5 ~slack:10. ~quick ~seed () in
  let healthy = engine_run base ~faults:Fault.none in
  let faulted = engine_run stormy ~faults:Fault.none in
  let dist = dist_run stormy ~faults:Fault.none in
  let logical = Spe.Executor.run stormy.network ~inputs:stormy.inputs in
  let verdict =
    Oracle.conservation ~drained:true ~graph:stormy.graph
      ~injected:stormy.injected faulted
    @ Oracle.conservation_spe ~drained:true ~network:stormy.network
        ~injected:stormy.injected dist
    @ [
        Oracle.sink_multiset ~mode:`Equal ~cutoff:stormy.last_ts ~logical ~dist;
        Oracle.latency_not_improved ~tol:0.1 ~healthy ~faulted ();
      ]
  in
  { schedule = Fault.none; healthy; faulted; dist = Some dist; verdict }

let blackout_core ~quick ~seed =
  let fx = fixture ~slack:6. ~quick ~seed () in
  let rng = Random.State.make [| seed; 0xB1AC |] in
  let spec = { Inject.default with crashes = 1; stragglers = 1; jitters = 1 } in
  let schedule =
    Inject.schedule ~rng ~spec ~problem:fx.problem ~assignment:fx.assignment
      ~horizon:fx.horizon
  in
  let healthy = engine_run fx ~faults:Fault.none in
  let faulted = engine_run fx ~faults:schedule in
  let dist = dist_run fx ~faults:schedule in
  let logical = Spe.Executor.run fx.network ~inputs:fx.inputs in
  let verdict =
    Oracle.conservation ~graph:fx.graph ~injected:fx.injected faulted
    @ Oracle.conservation_spe ~network:fx.network ~injected:fx.injected dist
    @ recovery_checks ~assignment:fx.assignment ~schedule
    @ Oracle.crash_volume_bounds
        ~samples:(volume_samples ~quick)
        ~problem:fx.problem ~schedule ()
    @ [ Oracle.sink_multiset ~mode:`Subset ~cutoff:fx.last_ts ~logical ~dist ]
  in
  { schedule; healthy; faulted; dist = Some dist; verdict }

(* Final destination per operator, in first-appearance order, no-ops
   dropped — the engines skip a migration to the current node, so a
   replanner proposal that revisits an operator must collapse before
   being scripted. *)
let dedupe_moves ~assignment moves =
  let final = Hashtbl.create 8 in
  List.iter (fun (op, dest) -> Hashtbl.replace final op dest) moves;
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (op, _) ->
      if Hashtbl.mem seen op then None
      else begin
        Hashtbl.add seen op ();
        match Hashtbl.find_opt final op with
        | Some dest when dest <> assignment.(op) -> Some (op, dest)
        | _ -> None
      end)
    moves

(* A scripted engine controller firing one batch of moves at the first
   tick at or after [at]. *)
let scripted_dynamic ?state_delay ~graph ~interval ~migration_delay
    ~drain_delay ~at moves =
  let fired = ref false in
  {
    Dsim.Engine.interval;
    migration_delay;
    drain_delay;
    state_delay =
      Option.value state_delay ~default:(Dynamic.Statesize.graph_cost graph);
    decide =
      (fun ~time ~utilization:_ ~op_cpu:_ ~rates:_ ~assignment:_ ->
        if (not !fired) && time >= at then begin
          fired := true;
          moves
        end
        else []);
  }

(* Live migration under a move budget on a healthy run: the budgeted
   replanner proposes the moves (toward a skewed rate point), both
   engines execute the pause–drain–resume protocol mid-run, and the
   migration differential oracles pin the result against a
   never-migrated execution of the same inputs. *)
let migrate_core ~quick ~seed =
  let fx = fixture ~quick ~seed () in
  let rate = if quick then 80. else 150. in
  (* Tick-aligned, so the scripted engine controller and the scripted
     dist migrations fire at the same instant. *)
  let t_move = Float.of_int (int_of_float (fx.horizon /. 3.)) in
  let proposal =
    Dynamic.Replanner.replan ~budget:2
      ~rates:(Vec.of_list [ 1.6 *. rate; rate ])
      ~cost_of:(Dynamic.Statesize.network_cost fx.network)
      fx.problem ~assignment:fx.assignment
  in
  let moves =
    match
      dedupe_moves ~assignment:fx.assignment
        (List.map
           (fun mv -> (mv.Dynamic.Replanner.op, mv.Dynamic.Replanner.to_node))
           proposal.Dynamic.Replanner.moves)
    with
    | _ :: _ as moves when proposal.Dynamic.Replanner.accepted -> moves
    | _ ->
      (* The fixture plan may already be a local optimum; migrate one
         operator anyway so the protocol still runs. *)
      [ (0, (fx.assignment.(0) + 1) mod n_nodes) ]
  in
  let healthy = engine_run fx ~faults:Fault.none in
  let faulted =
    engine_run
      ~dynamic:
        (scripted_dynamic ~graph:fx.graph ~interval:1. ~migration_delay:0.3
           ~drain_delay:0.05 ~at:t_move moves)
      fx ~faults:Fault.none
  in
  let timing =
    {
      Spe.Dist_executor.default_timing with
      state_delay = Dynamic.Statesize.network_cost fx.network;
    }
  in
  let migrated =
    dist_run ~migrations:[ (t_move, moves) ] ~timing fx ~faults:Fault.none
  in
  let baseline = dist_run fx ~faults:Fault.none in
  let logical = Spe.Executor.run fx.network ~inputs:fx.inputs in
  let verdict =
    Oracle.conservation ~drained:true ~graph:fx.graph ~injected:fx.injected
      faulted
    @ Oracle.migration_differential ~network:fx.network ~injected:fx.injected
        ~cutoff:fx.last_ts ~migrated ~baseline ()
    @ [
        Oracle.sink_multiset ~mode:`Equal ~cutoff:fx.last_ts ~logical
          ~dist:migrated;
        Oracle.custom ~name:"migrate:engine-count"
          ~passed:(faulted.Metrics.migrations = List.length moves)
          ~detail:
            (Printf.sprintf "engine started %d of %d scripted migrations"
               faulted.Metrics.migrations (List.length moves));
      ]
  in
  {
    schedule = Fault.none;
    healthy;
    faulted;
    dist = Some migrated;
    verdict;
  }

(* Crashes interleaved with live migrations: one crash kills a
   migration's source node mid-drain (the paused operator's buffered
   input must survive the node it left), a second kills another
   migration's destination before its handoff (that migration must
   abort).  Loss makes only the inequality/subset oracles applicable;
   the baseline for the differential is the fault-free never-migrated
   run, which dominates every loss-monotone execution. *)
let migrate_crash_core ~quick ~seed =
  let fx = fixture ~slack:8. ~quick ~seed () in
  let t_move = Float.of_int (int_of_float (fx.horizon /. 3.)) in
  let src_a = fx.assignment.(0) in
  let op_b =
    let rec find j =
      if j >= Array.length fx.assignment then 0
      else if fx.assignment.(j) <> src_a then j
      else find (j + 1)
    in
    find 1
  in
  let src_b = fx.assignment.(op_b) in
  let pick excluded =
    let rec go i = if List.mem i excluded then go (i + 1) else i in
    go 0
  in
  (* [dest_b] dies before the handoff; [dest_a] must survive it. *)
  let dest_b = pick [ src_a; src_b ] in
  let dest_a = pick [ src_a; dest_b ] in
  let moves = [ (0, dest_a); (op_b, dest_b) ] in
  let dead1 = Array.init n_nodes (fun i -> i = src_a) in
  let recovery1 =
    Inject.recovery_assignment fx.problem ~assignment:fx.assignment ~dead:dead1
  in
  let dead2 = Array.init n_nodes (fun i -> i = src_a || i = dest_b) in
  let recovery2 =
    Inject.recovery_assignment fx.problem ~assignment:recovery1 ~dead:dead2
  in
  let schedule =
    [
      Fault.Crash { node = src_a; at = t_move +. 0.2; recovery = recovery1 };
      Fault.Crash { node = dest_b; at = t_move +. 0.3; recovery = recovery2 };
    ]
  in
  let healthy = engine_run fx ~faults:Fault.none in
  let faulted =
    engine_run
      ~dynamic:
        (scripted_dynamic ~graph:fx.graph ~interval:1. ~migration_delay:0.6
           ~drain_delay:0.4 ~at:t_move moves)
      fx ~faults:schedule
  in
  let timing =
    {
      Spe.Dist_executor.drain_delay = 0.4;
      handoff_delay = 0.6;
      state_delay = Dynamic.Statesize.network_cost fx.network;
    }
  in
  let migrated =
    dist_run ~migrations:[ (t_move, moves) ] ~timing fx ~faults:schedule
  in
  let baseline = dist_run fx ~faults:Fault.none in
  let logical = Spe.Executor.run fx.network ~inputs:fx.inputs in
  let verdict =
    Oracle.conservation ~graph:fx.graph ~injected:fx.injected faulted
    @ Oracle.migration_differential ~drained:false ~network:fx.network
        ~injected:fx.injected ~cutoff:fx.last_ts ~migrated ~baseline ()
    @ recovery_checks ~assignment:fx.assignment ~schedule
    @ [
        Oracle.sink_multiset ~mode:`Subset ~cutoff:fx.last_ts ~logical
          ~dist:migrated;
        Oracle.custom ~name:"migrate:abort-path"
          ~passed:(migrated.Spe.Dist_executor.migrations = 2)
          ~detail:
            (Printf.sprintf
               "dist engine started %d migrations (one aborted by the \
                destination crash)"
               migrated.Spe.Dist_executor.migrations);
      ]
  in
  { schedule; healthy; faulted; dist = Some migrated; verdict }

(* ------------------------------------------------------------------ *)
(* Keyed split scenarios.  Branch A feeds a grouped aggregate — the
   split target — whose replicas are exact per group (integer-valued
   sums, so accumulation order cannot perturb them); branch B stays
   loss-monotone.  The post-aggregate filter passes every group row,
   so the split and unsplit sink multisets must agree tuple for
   tuple. *)

let keyed_replicas = 3

let keyed_unsplit () =
  Spe.Network.create ~n_inputs:2
    ~ops:
      [
        ( Sop.filter ~name:"cleanA" (fun t ->
              Value.to_string (Tuple.find t "proto") <> "icmp"),
          [ Graph.Sys_input 0 ] );
        ( Sop.aggregate ~name:"bySrc" ~window:2. ~group_by:"src"
            [ ("total", Sop.Sum "bytes"); ("n", Sop.Count) ],
          [ Graph.Op_output 0 ] );
        ( Sop.filter ~name:"busy" (fun t -> Tuple.number t "n" >= 1.),
          [ Graph.Op_output 1 ] );
        ( Sop.filter ~name:"cleanB" (fun t ->
              Value.to_string (Tuple.find t "proto") <> "icmp"),
          [ Graph.Sys_input 1 ] );
        (Sop.project ~name:"slimB" [ "src"; "bytes" ], [ Graph.Op_output 3 ]);
      ]
    ()

type keyed_fixture = {
  unsplit : Spe.Network.t;
  split : Keyed.Semantic.t;
  gsplit : Keyed.Split.t;  (** cost-model twin over the unsplit skeleton *)
  g0 : Graph.t;  (** unsplit skeleton graph *)
  sgraph : Graph.t;  (** split cost-model graph, [gsplit.graph] *)
  ngraph : Graph.t;  (** skeleton of the split semantic network *)
  gproblem : Rod.Problem.t;
  nproblem : Rod.Problem.t;
  assignment_g : int array;
  assignment_n : int array;
  assignment_b : int array;
  caps_g : Vec.t;
  caps_n : Vec.t;
  caps_b : Vec.t;
  distinct : float;  (** HyperLogLog distinct-key estimate *)
  inputs : Tuple.t list array;
  arrivals : float list array;
  injected : int array;
  last_ts : float;
  horizon : float;
  until : float;
}

let scale_caps ~what ~graph ~problem ~assignment ~rate =
  let model = Query.Load_model.derive graph in
  let vars =
    Query.Load_model.eval_vars model
      ~sys_rates:(Vec.create (Graph.n_inputs graph) rate)
  in
  let ln = Rod.Plan.node_loads (Rod.Plan.make problem assignment) in
  let predicted =
    Vec.max_elt (Vec.init n_nodes (fun i -> Vec.dot (Mat.row ln i) vars))
  in
  let caps = Vec.create n_nodes (Float.max 1e-9 (predicted /. 0.6)) in
  Analysis.Plan_check.assert_ok ~what
    (Analysis.Plan_check.check_model model ~caps);
  caps

(* [hand] pins assignments so that node 3 hosts only post-aggregate and
   branch-B operators: crashing it loses whole group rows or
   loss-monotone branch-B tuples, never aggregate {e inputs} — losses
   upstream of an aggregate would change surviving rows' values and no
   subset oracle could hold. *)
let keyed_fixture ?claims ?(hand = false) ?(slack = 6.) ~quick ~seed () =
  let rng = Random.State.make [| seed; 0x5EED |] in
  let horizon = if quick then 8. else 30. in
  let rate = if quick then 80. else 150. in
  let trace =
    Workload.Trace.create ~dt:1. (Array.make (int_of_float horizon) rate)
  in
  let inputs =
    [|
      Spe.Datagen.packets ~rng ~trace ~hosts:10 ();
      Spe.Datagen.packets ~rng ~trace ~hosts:10 ();
    |]
  in
  let unsplit = keyed_unsplit () in
  let key_of = Keyed.Semantic.key_of_field ~seed:7 "src" in
  let keys = Array.of_list (List.map key_of inputs.(0)) in
  let profile = Keyed.Estimator.profile ~capacity:16 ~min_share:0.02 keys in
  let partitioner =
    Keyed.Estimator.hybrid_of_profile ~replicas:keyed_replicas
      ~seed:(seed land 0xffff) profile
  in
  Keyed.Partitioner.warm partitioner keys;
  let split =
    Keyed.Semantic.split ?claims ~network:unsplit ~op:1 ~key_of ~partitioner ()
  in
  let g0 = Spe.Network.skeleton ~costs:(fun _ -> 2e-4) unsplit in
  let gsplit =
    Keyed.Split.split ~route_cost:2e-5 ~merge_cost:2e-5 g0 ~op:1
      ~shares:(Keyed.Partitioner.shares partitioner)
  in
  let sgraph = gsplit.Keyed.Split.graph in
  let ngraph =
    Spe.Network.skeleton ~costs:(fun _ -> 2e-4) split.Keyed.Semantic.network
  in
  let unit_caps = Rod.Problem.homogeneous_caps ~n:n_nodes ~cap:1. in
  let gproblem = Rod.Problem.of_graph sgraph ~caps:unit_caps in
  let nproblem = Rod.Problem.of_graph ngraph ~caps:unit_caps in
  let bproblem = Rod.Problem.of_graph g0 ~caps:unit_caps in
  let assignment_g =
    if hand then [| 0; 0; 3; 3; 3; 1; 1; 2; 3 |]
    else Rod.Rod_algorithm.place gproblem
  in
  let assignment_n =
    if hand then [| 0; 0; 3; 3; 3; 0; 1; 0; 1; 0; 2; 3 |]
    else Rod.Rod_algorithm.place nproblem
  in
  let assignment_b = Rod.Rod_algorithm.place bproblem in
  let caps_g =
    scale_caps ~what:"keyed split cost graph" ~graph:sgraph ~problem:gproblem
      ~assignment:assignment_g ~rate
  in
  let caps_n =
    scale_caps ~what:"keyed split network" ~graph:ngraph ~problem:nproblem
      ~assignment:assignment_n ~rate
  in
  let caps_b =
    scale_caps ~what:"keyed unsplit baseline" ~graph:g0 ~problem:bproblem
      ~assignment:assignment_b ~rate
  in
  {
    unsplit;
    split;
    gsplit;
    g0;
    sgraph;
    ngraph;
    gproblem;
    nproblem;
    assignment_g;
    assignment_n;
    assignment_b;
    caps_g;
    caps_n;
    caps_b;
    distinct = profile.Keyed.Estimator.distinct;
    inputs;
    arrivals = Array.map (List.map Tuple.ts) inputs;
    injected = Array.map List.length inputs;
    last_ts =
      Array.fold_left
        (List.fold_left (fun acc t -> Float.max acc (Tuple.ts t)))
        0. inputs;
    horizon;
    until = horizon +. slack;
  }

let keyed_baseline_dist fx =
  Spe.Dist_executor.run ~network:fx.unsplit ~assignment:fx.assignment_b
    ~caps:fx.caps_b
    ~cost:(Spe.Dist_executor.cost_model_of_graph fx.g0)
    ~inputs:fx.inputs ~until:fx.until ()

(* Live migration of a split replica: the key-range handoff is priced
   by [Statesize.split_cost] (share of the HyperLogLog-estimated
   distinct keys) on the cost engine and [network_cost] on the
   semantic engine, and the split differential pins the migrated split
   run against the unsplit baseline. *)
let split_migrate_core ~quick ~seed =
  let fx = keyed_fixture ~quick ~seed () in
  let t_move = Float.of_int (int_of_float (fx.horizon /. 3.)) in
  let rep_g = fx.gsplit.Keyed.Split.replica_ops.(0) in
  let moves_g = [ (rep_g, (fx.assignment_g.(rep_g) + 1) mod n_nodes) ] in
  let rep_n = fx.split.Keyed.Semantic.replica_ops.(0) in
  let moves_n = [ (rep_n, (fx.assignment_n.(rep_n) + 1) mod n_nodes) ] in
  let healthy =
    Dsim.Engine.run ~graph:fx.sgraph ~assignment:fx.assignment_g
      ~caps:fx.caps_g ~arrivals:fx.arrivals ~until:fx.until ()
  in
  let faulted =
    Dsim.Engine.run ~graph:fx.sgraph ~assignment:fx.assignment_g
      ~caps:fx.caps_g ~arrivals:fx.arrivals
      ~dynamic:
        (scripted_dynamic
           ~state_delay:
             (Dynamic.Statesize.split_cost ~distinct_keys:fx.distinct
                fx.gsplit)
           ~graph:fx.sgraph ~interval:1. ~migration_delay:0.3
           ~drain_delay:0.05 ~at:t_move moves_g)
      ~until:fx.until ()
  in
  let timing =
    {
      Spe.Dist_executor.default_timing with
      state_delay = Dynamic.Statesize.network_cost fx.split.Keyed.Semantic.network;
    }
  in
  let split_dist =
    Spe.Dist_executor.run ~network:fx.split.Keyed.Semantic.network
      ~assignment:fx.assignment_n ~caps:fx.caps_n
      ~cost:(Spe.Dist_executor.cost_model_of_graph fx.ngraph)
      ~inputs:fx.inputs
      ~migrations:[ (t_move, moves_n) ]
      ~timing ~until:fx.until ()
  in
  let baseline_dist = keyed_baseline_dist fx in
  let logical =
    Spe.Executor.run ~record:true fx.split.Keyed.Semantic.network
      ~inputs:fx.inputs
  in
  let verdict =
    Oracle.conservation ~drained:true ~graph:fx.sgraph ~injected:fx.injected
      faulted
    @ Oracle.split_differential ~split:fx.split ~injected:fx.injected
        ~cutoff:fx.last_ts ~split_dist ~baseline_dist ~logical ()
    @ [
        Oracle.custom ~name:"split:migrated"
          ~passed:
            (faulted.Metrics.migrations = 1
            && split_dist.Spe.Dist_executor.migrations = 1)
          ~detail:
            (Printf.sprintf
               "engine started %d, dist engine %d replica migrations"
               faulted.Metrics.migrations
               split_dist.Spe.Dist_executor.migrations);
      ]
  in
  { schedule = Fault.none; healthy; faulted; dist = Some split_dist; verdict }

(* A crash on the node hosting only post-aggregate operators (merger,
   group-row filter, branch B): losses remove whole rows, so the split
   run must stay a sub-multiset of the unsplit baseline while the
   recovery and per-key routing laws keep holding. *)
let split_crash_core ~quick ~seed =
  let fx = keyed_fixture ~hand:true ~slack:8. ~quick ~seed () in
  let t_fault = Float.of_int (int_of_float (fx.horizon /. 3.)) +. 0.25 in
  let dead = Array.init n_nodes (fun i -> i = 3) in
  let recovery_g =
    Inject.recovery_assignment fx.gproblem ~assignment:fx.assignment_g ~dead
  in
  let recovery_n =
    Inject.recovery_assignment fx.nproblem ~assignment:fx.assignment_n ~dead
  in
  let schedule_g = [ Fault.Crash { node = 3; at = t_fault; recovery = recovery_g } ] in
  let schedule_n = [ Fault.Crash { node = 3; at = t_fault; recovery = recovery_n } ] in
  let healthy =
    Dsim.Engine.run ~graph:fx.sgraph ~assignment:fx.assignment_g
      ~caps:fx.caps_g ~arrivals:fx.arrivals ~until:fx.until ()
  in
  let faulted =
    Dsim.Engine.run ~graph:fx.sgraph ~assignment:fx.assignment_g
      ~caps:fx.caps_g ~arrivals:fx.arrivals
      ~config:{ Dsim.Engine.default_config with faults = schedule_g }
      ~until:fx.until ()
  in
  let split_dist =
    Spe.Dist_executor.run ~network:fx.split.Keyed.Semantic.network
      ~assignment:fx.assignment_n ~caps:fx.caps_n
      ~cost:(Spe.Dist_executor.cost_model_of_graph fx.ngraph)
      ~inputs:fx.inputs
      ~config:{ Spe.Dist_executor.default_config with faults = schedule_n }
      ~until:fx.until ()
  in
  let baseline_dist = keyed_baseline_dist fx in
  let logical =
    Spe.Executor.run ~record:true fx.split.Keyed.Semantic.network
      ~inputs:fx.inputs
  in
  let verdict =
    Oracle.conservation ~graph:fx.sgraph ~injected:fx.injected faulted
    @ Oracle.split_differential ~drained:false ~split:fx.split
        ~injected:fx.injected ~cutoff:fx.last_ts ~split_dist ~baseline_dist
        ~logical ()
    @ recovery_checks ~assignment:fx.assignment_n ~schedule:schedule_n
  in
  {
    schedule = schedule_n;
    healthy;
    faulted;
    dist = Some split_dist;
    verdict;
  }

(* ------------------------------------------------------------------ *)

let with_replay core ~quick ~seed =
  let first = ref None in
  let render () =
    let o = core ~quick ~seed in
    if Option.is_none !first then first := Some o;
    describe o
  in
  let replay = Oracle.replay_identical ~name:"replay" ~run:render in
  match !first with
  | None -> assert false
  | Some o -> { o with verdict = o.verdict @ [ replay ] }

let make id name core =
  { id; name; run = (fun ?(quick = false) ~seed () -> with_replay core ~quick ~seed) }

let all =
  [
    make "healthy" "fault-free differential baseline: all engines agree"
      healthy_core;
    make "crash" "two chained node crashes with ROD recovery" crash_core;
    make "straggler" "capacity-degradation windows on random nodes"
      straggler_core;
    make "jitter" "network-delay jitter windows" jitter_core;
    make "storm" "b-model burst storm layered on the input traces"
      storm_core;
    make "blackout" "crash + straggler + jitter combined" blackout_core;
    make "migrate"
      "live migration under a move budget, pinned by differential oracles"
      migrate_core;
    make "migrate-crash"
      "crashes mid-drain and before handoff during live migrations"
      migrate_crash_core;
    make "split-migrate"
      "keyed split replica migrated live, pinned against the unsplit baseline"
      split_migrate_core;
    make "split-crash"
      "crash of the post-aggregate node under a keyed split" split_crash_core;
  ]

let find id = List.find_opt (fun s -> String.equal s.id id) all
