module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Fault = Dsim.Fault
module Metrics = Dsim.Sim_metrics
module Sop = Spe.Sop
module Tuple = Spe.Tuple
module Value = Spe.Value
module Graph = Query.Graph

type outcome = {
  schedule : Fault.schedule;
  healthy : Metrics.t;
  faulted : Metrics.t;
  dist : Spe.Dist_executor.result option;
  verdict : Oracle.verdict;
}

type t = {
  id : string;
  name : string;
  run : ?quick:bool -> seed:int -> unit -> outcome;
}

let describe o =
  Format.asprintf "@[<v>schedule:@,%a@,healthy:@,%a@,faulted:@,%a@,%tverdict:@,%a@]"
    Fault.pp o.schedule Metrics.pp o.healthy Metrics.pp o.faulted
    (fun fmt ->
      match o.dist with
      | None -> ()
      | Some d ->
        Format.fprintf fmt "dist: outputs %d backlog %d lost %d@,"
          (List.length d.Spe.Dist_executor.outputs)
          d.Spe.Dist_executor.backlog d.Spe.Dist_executor.lost)
    Oracle.pp o.verdict

(* ------------------------------------------------------------------ *)
(* Fixture: a loss-monotone network (filters, map, project, union — no
   operator whose output can GROW when inputs are lost), so the
   crashed-run sink outputs must be a sub-multiset of the fault-free
   logical run's.  Costs come from the skeleton graph, not the
   profiler: profiled costs are wall-clock measurements and would break
   byte-replay determinism. *)

let n_nodes = 4

let network () =
  Spe.Network.create ~n_inputs:2
    ~ops:
      [
        ( Sop.filter ~name:"cleanA" (fun t ->
              Value.to_string (Tuple.find t "proto") <> "icmp"),
          [ Graph.Sys_input 0 ] );
        (Sop.map ~name:"tagA" (fun t -> t), [ Graph.Op_output 0 ]);
        ( Sop.filter ~name:"cleanB" (fun t ->
              Value.to_string (Tuple.find t "proto") <> "icmp"),
          [ Graph.Sys_input 1 ] );
        (Sop.project ~name:"slimB" [ "src"; "bytes" ], [ Graph.Op_output 2 ]);
        ( Sop.union ~name:"merge" ~arity:2 (),
          [ Graph.Op_output 1; Graph.Op_output 3 ] );
        ( Sop.filter ~name:"big" (fun t -> Tuple.number t "bytes" >= 100.),
          [ Graph.Op_output 4 ] );
      ]
    ()

type fixture = {
  network : Spe.Network.t;
  graph : Graph.t;
  problem : Rod.Problem.t;
  assignment : int array;
  caps : Vec.t;
  inputs : Tuple.t list array;
  arrivals : float list array;
  injected : int array;
  last_ts : float;
  horizon : float;
  until : float;
}

let fixture ?(storm_factor = 0.) ?(slack = 4.) ~quick ~seed () =
  let rng = Random.State.make [| seed; 0xC4A05 |] in
  let horizon = if quick then 8. else 30. in
  let rate = if quick then 80. else 150. in
  let base =
    Workload.Trace.create ~dt:1. (Array.make (int_of_float horizon) rate)
  in
  let trace =
    if storm_factor > 0. then Inject.storm ~rng ~factor:storm_factor base
    else base
  in
  let inputs =
    [|
      Spe.Datagen.packets ~rng ~trace ~hosts:10 ();
      Spe.Datagen.packets ~rng ~trace ~hosts:10 ();
    |]
  in
  let network = network () in
  let graph = Spe.Network.skeleton ~costs:(fun _ -> 2e-4) network in
  let problem =
    Rod.Problem.of_graph graph
      ~caps:(Rod.Problem.homogeneous_caps ~n:n_nodes ~cap:1.)
  in
  let assignment = Rod.Rod_algorithm.place problem in
  (* Scale node capacities so the predicted hottest node runs at 60% of
     capacity at the base rate — enough headroom to drain, enough load
     for faults to show in the latency distribution. *)
  let model = Query.Load_model.derive graph in
  let vars =
    Query.Load_model.eval_vars model ~sys_rates:(Vec.of_list [ rate; rate ])
  in
  let ln = Rod.Plan.node_loads (Rod.Plan.make problem assignment) in
  let predicted =
    Vec.max_elt (Vec.init n_nodes (fun i -> Vec.dot (Mat.row ln i) vars))
  in
  let caps = Vec.create n_nodes (Float.max 1e-9 (predicted /. 0.6)) in
  (* A chaos fixture that fails static analysis would chase faults in a
     plan no deployment path accepts; reject it up front. *)
  Analysis.Plan_check.assert_ok ~what:"chaos fixture"
    (Analysis.Plan_check.check_model model ~caps);
  let arrivals = Array.map (List.map Tuple.ts) inputs in
  let injected = Array.map List.length inputs in
  let last_ts =
    Array.fold_left
      (List.fold_left (fun acc t -> Float.max acc (Tuple.ts t)))
      0. inputs
  in
  {
    network;
    graph;
    problem;
    assignment;
    caps;
    inputs;
    arrivals;
    injected;
    last_ts;
    horizon;
    until = horizon +. slack;
  }

let engine_run fx ~faults =
  Dsim.Engine.run ~graph:fx.graph ~assignment:fx.assignment ~caps:fx.caps
    ~arrivals:fx.arrivals
    ~config:{ Dsim.Engine.default_config with faults }
    ~until:fx.until ()

let dist_run fx ~faults =
  Spe.Dist_executor.run ~network:fx.network ~assignment:fx.assignment
    ~caps:fx.caps
    ~cost:(Spe.Dist_executor.cost_model_of_graph fx.graph)
    ~inputs:fx.inputs
    ~config:{ Spe.Dist_executor.default_config with faults }
    ~until:fx.until ()

let volume_samples ~quick = if quick then 2048 else 8192

(* Walk the schedule's crashes in order, validating each chained
   recovery against the assignment it supersedes. *)
let recovery_checks ~assignment ~schedule =
  let dead = Array.make n_nodes false in
  let current = ref assignment in
  List.concat_map
    (fun (_, node, recovery) ->
      dead.(node) <- true;
      let checks = Oracle.recovery_valid ~dead ~before:!current ~recovery in
      current := recovery;
      checks)
    (Fault.crashes schedule)

(* ------------------------------------------------------------------ *)
(* Scenario cores.  Each core is a pure function of (quick, seed); the
   [replay] check runs the core twice and compares renderings, so the
   published outcome is the first of those two executions. *)

let healthy_core ~quick ~seed =
  let fx = fixture ~quick ~seed () in
  let healthy = engine_run fx ~faults:Fault.none in
  let dist = dist_run fx ~faults:Fault.none in
  let logical = Spe.Executor.run fx.network ~inputs:fx.inputs in
  let verdict =
    Oracle.conservation ~drained:true ~graph:fx.graph ~injected:fx.injected
      healthy
    @ Oracle.conservation_spe ~drained:true ~network:fx.network
        ~injected:fx.injected dist
    @ [ Oracle.sink_multiset ~mode:`Equal ~cutoff:fx.last_ts ~logical ~dist ]
  in
  { schedule = Fault.none; healthy; faulted = healthy; dist = Some dist; verdict }

let crash_core ~quick ~seed =
  let fx = fixture ~quick ~seed () in
  let rng = Random.State.make [| seed; 0xFA17 |] in
  let spec = { Inject.default with crashes = 2 } in
  let schedule =
    Inject.schedule ~rng ~spec ~problem:fx.problem ~assignment:fx.assignment
      ~horizon:fx.horizon
  in
  let healthy = engine_run fx ~faults:Fault.none in
  let faulted = engine_run fx ~faults:schedule in
  let dist = dist_run fx ~faults:schedule in
  let logical = Spe.Executor.run fx.network ~inputs:fx.inputs in
  (* No latency-monotonicity check here: losing a node consolidates
     operators, which can legitimately REMOVE network hops from the sink
     path — crash latency is not monotone, only delay faults are. *)
  let verdict =
    Oracle.conservation ~graph:fx.graph ~injected:fx.injected faulted
    @ Oracle.conservation_spe ~network:fx.network ~injected:fx.injected dist
    @ recovery_checks ~assignment:fx.assignment ~schedule
    @ Oracle.crash_volume_bounds
        ~samples:(volume_samples ~quick)
        ~problem:fx.problem ~schedule ()
    @ [ Oracle.sink_multiset ~mode:`Subset ~cutoff:fx.last_ts ~logical ~dist ]
  in
  { schedule; healthy; faulted; dist = Some dist; verdict }

(* Shared body of the two pure-delay scenarios (stragglers, jitter):
   no tuple is ever lost, so the drained-equality oracles must still
   hold and latency can only get worse. *)
let delay_core ~spec ~salt ~quick ~seed =
  let fx = fixture ~quick ~seed () in
  let rng = Random.State.make [| seed; salt |] in
  let schedule =
    Inject.schedule ~rng ~spec ~problem:fx.problem ~assignment:fx.assignment
      ~horizon:fx.horizon
  in
  let healthy = engine_run fx ~faults:Fault.none in
  let faulted = engine_run fx ~faults:schedule in
  let dist = dist_run fx ~faults:schedule in
  let logical = Spe.Executor.run fx.network ~inputs:fx.inputs in
  let verdict =
    Oracle.conservation ~drained:true ~graph:fx.graph ~injected:fx.injected
      faulted
    @ Oracle.conservation_spe ~drained:true ~network:fx.network
        ~injected:fx.injected dist
    @ [
        Oracle.sink_multiset ~mode:`Equal ~cutoff:fx.last_ts ~logical ~dist;
        Oracle.latency_not_improved ~healthy ~faulted ();
      ]
  in
  { schedule; healthy; faulted; dist = Some dist; verdict }

let straggler_core =
  delay_core ~salt:0x57A6
    ~spec:{ Inject.default with crashes = 0; stragglers = 2 }

let jitter_core =
  delay_core ~salt:0x7177 ~spec:{ Inject.default with crashes = 0; jitters = 2 }

let storm_core ~quick ~seed =
  let base = fixture ~slack:10. ~quick ~seed () in
  let stormy = fixture ~storm_factor:0.5 ~slack:10. ~quick ~seed () in
  let healthy = engine_run base ~faults:Fault.none in
  let faulted = engine_run stormy ~faults:Fault.none in
  let dist = dist_run stormy ~faults:Fault.none in
  let logical = Spe.Executor.run stormy.network ~inputs:stormy.inputs in
  let verdict =
    Oracle.conservation ~drained:true ~graph:stormy.graph
      ~injected:stormy.injected faulted
    @ Oracle.conservation_spe ~drained:true ~network:stormy.network
        ~injected:stormy.injected dist
    @ [
        Oracle.sink_multiset ~mode:`Equal ~cutoff:stormy.last_ts ~logical ~dist;
        Oracle.latency_not_improved ~tol:0.1 ~healthy ~faulted ();
      ]
  in
  { schedule = Fault.none; healthy; faulted; dist = Some dist; verdict }

let blackout_core ~quick ~seed =
  let fx = fixture ~slack:6. ~quick ~seed () in
  let rng = Random.State.make [| seed; 0xB1AC |] in
  let spec = { Inject.default with crashes = 1; stragglers = 1; jitters = 1 } in
  let schedule =
    Inject.schedule ~rng ~spec ~problem:fx.problem ~assignment:fx.assignment
      ~horizon:fx.horizon
  in
  let healthy = engine_run fx ~faults:Fault.none in
  let faulted = engine_run fx ~faults:schedule in
  let dist = dist_run fx ~faults:schedule in
  let logical = Spe.Executor.run fx.network ~inputs:fx.inputs in
  let verdict =
    Oracle.conservation ~graph:fx.graph ~injected:fx.injected faulted
    @ Oracle.conservation_spe ~network:fx.network ~injected:fx.injected dist
    @ recovery_checks ~assignment:fx.assignment ~schedule
    @ Oracle.crash_volume_bounds
        ~samples:(volume_samples ~quick)
        ~problem:fx.problem ~schedule ()
    @ [ Oracle.sink_multiset ~mode:`Subset ~cutoff:fx.last_ts ~logical ~dist ]
  in
  { schedule; healthy; faulted; dist = Some dist; verdict }

(* ------------------------------------------------------------------ *)

let with_replay core ~quick ~seed =
  let first = ref None in
  let render () =
    let o = core ~quick ~seed in
    if Option.is_none !first then first := Some o;
    describe o
  in
  let replay = Oracle.replay_identical ~name:"replay" ~run:render in
  match !first with
  | None -> assert false
  | Some o -> { o with verdict = o.verdict @ [ replay ] }

let make id name core =
  { id; name; run = (fun ?(quick = false) ~seed () -> with_replay core ~quick ~seed) }

let all =
  [
    make "healthy" "fault-free differential baseline: all engines agree"
      healthy_core;
    make "crash" "two chained node crashes with ROD recovery" crash_core;
    make "straggler" "capacity-degradation windows on random nodes"
      straggler_core;
    make "jitter" "network-delay jitter windows" jitter_core;
    make "storm" "b-model burst storm layered on the input traces"
      storm_core;
    make "blackout" "crash + straggler + jitter combined" blackout_core;
  ]

let find id = List.find_opt (fun s -> String.equal s.id id) all
