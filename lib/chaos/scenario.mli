(** The chaos scenario registry: named, seeded end-to-end runs that
    inject a fault schedule into a placed network, execute it on the
    engines, and judge the result with the {!Oracle} checks.

    Every scenario is bit-reproducible: the seed fixes the workload, the
    schedule and both engines, and each run carries a [replay] check
    asserting two fresh executions render byte-identically. *)

type outcome = {
  schedule : Dsim.Fault.schedule;
  healthy : Dsim.Sim_metrics.t;  (** Fault-free baseline run. *)
  faulted : Dsim.Sim_metrics.t;
      (** The run under the schedule (equals [healthy] in fault-free
          scenarios). *)
  dist : Spe.Dist_executor.result option;
      (** The semantic distributed run, when the scenario exercises it. *)
  verdict : Oracle.verdict;
}

type t = {
  id : string;  (** Registry key, e.g. ["crash"]. *)
  name : string;  (** One-line description. *)
  run : ?quick:bool -> seed:int -> unit -> outcome;
}

val describe : outcome -> string
(** Deterministic rendering (schedule, both runs' metrics, the
    distributed run's summary, every check) — what the determinism
    tests compare byte-for-byte. *)

val all : t list
(** [healthy], [crash], [straggler], [jitter], [storm], [blackout]. *)

val find : string -> t option
