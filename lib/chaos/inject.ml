module Vec = Linalg.Vec
module Problem = Rod.Problem
module Fault = Dsim.Fault

type spec = {
  crashes : int;
  crash_window : float * float;
  stragglers : int;
  straggler_factor : float;
  straggler_len : float;
  jitters : int;
  jitter_extra : float;
  jitter_len : float;
}

let default =
  {
    crashes = 1;
    crash_window = (0.25, 0.75);
    stragglers = 0;
    straggler_factor = 0.35;
    straggler_len = 0.25;
    jitters = 0;
    jitter_extra = 0.05;
    jitter_len = 0.25;
  }

let recovery_assignment problem ~assignment ~dead =
  let n = Problem.n_nodes problem in
  let m = Problem.n_ops problem in
  if Array.length assignment <> m then
    invalid_arg "Inject.recovery_assignment: assignment length";
  if Array.length dead <> n then
    invalid_arg "Inject.recovery_assignment: dead length";
  let live =
    Array.of_list
      (List.filter (fun i -> not dead.(i)) (List.init n (fun i -> i)))
  in
  if Array.length live = 0 then
    invalid_arg "Inject.recovery_assignment: no node left alive";
  let compact = Array.make n (-1) in
  Array.iteri (fun c i -> compact.(i) <- c) live;
  let caps = Vec.init (Array.length live) (fun c -> problem.Problem.caps.(live.(c))) in
  let sub = Problem.create ~lo:problem.Problem.lo ~caps in
  let fixed =
    Array.map
      (fun node ->
        if node < 0 || node >= n then
          invalid_arg "Inject.recovery_assignment: bad node index"
        else if dead.(node) then None
        else Some compact.(node))
      assignment
  in
  let placed = Rod.Rod_algorithm.place_incremental ~fixed sub in
  Array.map (fun c -> live.(c)) placed

let schedule ~rng ~spec ~problem ~assignment ~horizon =
  if horizon <= 0. then invalid_arg "Inject.schedule: horizon <= 0";
  let n = Problem.n_nodes problem in
  let m = Problem.n_ops problem in
  if Array.length assignment <> m then
    invalid_arg "Inject.schedule: assignment length";
  let lo, hi = spec.crash_window in
  if lo < 0. || hi < lo || hi > 1. then
    invalid_arg "Inject.schedule: bad crash window";
  let crashes = max 0 (min spec.crashes (n - 1)) in
  let times =
    List.sort Float.compare
      (List.init crashes (fun _ ->
           (lo +. Random.State.float rng (Float.max (hi -. lo) 1e-9))
           *. horizon))
  in
  let dead = Array.make n false in
  let current = ref (Array.copy assignment) in
  let crash_events =
    List.map
      (fun at ->
        let live = List.filter (fun i -> not dead.(i)) (List.init n Fun.id) in
        let node = List.nth live (Random.State.int rng (List.length live)) in
        dead.(node) <- true;
        let recovery =
          recovery_assignment problem ~assignment:!current ~dead
        in
        current := recovery;
        Fault.Crash { node; at; recovery })
      times
  in
  let window len =
    let len = Float.min 1. len *. horizon in
    let from_ = Random.State.float rng (Float.max (horizon -. len) 1e-9) in
    (from_, from_ +. len)
  in
  let straggler_events =
    List.init spec.stragglers (fun _ ->
        let node = Random.State.int rng n in
        let from_, until_ = window spec.straggler_len in
        Fault.Slowdown { node; from_; until_; factor = spec.straggler_factor })
  in
  let jitter_events =
    List.init spec.jitters (fun _ ->
        let from_, until_ = window spec.jitter_len in
        let extra = spec.jitter_extra *. (0.5 +. Random.State.float rng 0.5) in
        Fault.Jitter { from_; until_; extra })
  in
  let sched = crash_events @ straggler_events @ jitter_events in
  Fault.validate ~n_nodes:n ~n_ops:m sched;
  sched

let storm ~rng ?(bias = 0.75) ~factor trace =
  if factor < 0. then invalid_arg "Inject.storm: negative factor";
  let module Trace = Workload.Trace in
  let n = Trace.length trace in
  let levels =
    let rec go l = if 1 lsl l >= n then l else go (l + 1) in
    go 0
  in
  let burst =
    Workload.Bmodel.trace ~rng ~bias ~levels
      ~mean_rate:(factor *. Trace.mean_rate trace)
      ~dt:trace.Trace.dt
  in
  (* The cascade length is the next power of two; superimpose its head. *)
  Trace.add trace (Trace.slice burst 0 n)
