(** Seeded fault-schedule generation: turn a declarative chaos spec into
    the pure {!Dsim.Fault.schedule} both engines replay.

    Every draw comes from the caller's [Random.State], so the same seed
    always produces the same schedule — bit-reproducible chaos.  Crash
    events carry their recovery assignments precomputed here (via the
    placement stack's incremental ROD greedy), because the engines must
    not depend on the placement layer. *)

type spec = {
  crashes : int;  (** Node crashes (clamped to [n_nodes - 1]). *)
  crash_window : float * float;
      (** Crash instants are drawn uniformly in
          [(lo *. horizon, hi *. horizon)]. *)
  stragglers : int;  (** Capacity-degradation windows. *)
  straggler_factor : float;  (** Capacity multiplier in [(0, 1]]. *)
  straggler_len : float;  (** Window length as a fraction of horizon. *)
  jitters : int;  (** Network-delay windows. *)
  jitter_extra : float;  (** Peak extra one-way delay, seconds. *)
  jitter_len : float;  (** Window length as a fraction of horizon. *)
}

val default : spec
(** One mid-run crash, no stragglers, no jitter;
    [crash_window = (0.25, 0.75)], [straggler_factor = 0.35],
    [straggler_len = 0.25], [jitter_extra = 0.05], [jitter_len = 0.25]. *)

val recovery_assignment :
  Rod.Problem.t -> assignment:int array -> dead:bool array -> int array
(** The post-crash assignment in the {e original} node indexing, with
    any number of dead nodes: survivors stay put, orphans are re-placed
    on the live nodes by {!Rod.Rod_algorithm.place_incremental}.  With a
    single dead node this agrees with
    {!Rod.Failure.recovery_assignment} modulo the index compaction.
    @raise Invalid_argument when no node is left alive or the arrays'
    lengths disagree with the problem. *)

val schedule :
  rng:Random.State.t ->
  spec:spec ->
  problem:Rod.Problem.t ->
  assignment:int array ->
  horizon:float ->
  Dsim.Fault.schedule
(** Draw a schedule: crash nodes are picked uniformly among the still
    alive ones (times sorted ascending, recoveries chained so each
    crash's recovery accounts for all earlier ones), straggler and
    jitter windows are placed uniformly inside the horizon.  The result
    passes {!Dsim.Fault.validate}. *)

val storm :
  rng:Random.State.t ->
  ?bias:float ->
  factor:float ->
  Workload.Trace.t ->
  Workload.Trace.t
(** Layer a self-similar b-model burst storm on a rate trace: the storm
    has mean rate [factor *. mean_rate trace] and the given cascade
    [bias] (default 0.75), superimposed interval-wise — the flash-crowd
    input surge of the paper's motivation, made reproducible. *)
