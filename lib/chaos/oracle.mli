(** Cross-engine differential oracles and fault invariants.

    Each check is a named pass/fail with a human-readable detail; a
    verdict is just the list of checks run for a scenario.  The checks
    are reusable as a correctness gate: they compare the three execution
    layers — {!Spe.Executor} (logical semantics), {!Dsim.Engine} (cost
    model), {!Spe.Dist_executor} (semantics + timing) — and bound what
    injected faults may do to each.

    Conservation checks assume the run was measured from time zero
    ([warmup = 0.]); equality forms additionally assume the caller left
    enough slack after the last input for the system to drain. *)

type check = {
  name : string;
  passed : bool;
  detail : string;
}

type verdict = check list

val passed : verdict -> bool

val pp : Format.formatter -> verdict -> unit
(** One line per check, stable rendering (determinism tests compare
    it byte-for-byte). *)

val custom : name:string -> passed:bool -> detail:string -> check
(** A scenario-specific check in the shared shape, so ad-hoc invariants
    render and aggregate like the built-in oracles. *)

val conservation :
  ?drained:bool ->
  graph:Query.Graph.t ->
  injected:int array ->
  Dsim.Sim_metrics.t ->
  check list
(** Tuple conservation per operator arc in a cost-model run: what
    operator [v] consumed on arc [i] never exceeds what the arc's source
    produced (the upstream operator's emitted total, or [injected.(k)]
    source tuples of stream [k]).  With [drained:true] (run fully
    drained: no backlog, losses, or in-flight work at [until]) the
    inequalities must be equalities. *)

val conservation_spe :
  ?drained:bool ->
  network:Spe.Network.t ->
  injected:int array ->
  Spe.Dist_executor.result ->
  check list
(** The same conservation law on the semantic distributed engine. *)

val sink_multiset :
  mode:[ `Equal | `Subset ] ->
  cutoff:float ->
  logical:Spe.Executor.result ->
  dist:Spe.Dist_executor.result ->
  check
(** Compare sink-output multisets of the logical and the distributed
    semantic engine, restricted to outputs timestamped [<= cutoff] (the
    logical engine flushes end-of-stream windows the timed engine cannot
    reach; pass the last input timestamp).  [`Equal] is the healthy-run
    oracle; [`Subset] (distributed ⊆ logical) is the fault-run oracle
    for loss-monotone networks (stateless operators and joins, where
    losing inputs can only remove outputs). *)

val migration_differential :
  ?drained:bool ->
  network:Spe.Network.t ->
  injected:int array ->
  cutoff:float ->
  migrated:Spe.Dist_executor.result ->
  baseline:Spe.Dist_executor.result ->
  unit ->
  check list
(** Differential oracles pinning live migration against a
    never-migrated execution of the same network and inputs:

    - [migrate:count] — the migrated run actually started a migration
      (guards the scenario itself against silently testing nothing);
    - [migrate:opV.I] — per-arc flow conservation on the migrated run.
      [consumed <= produced] {e is} the "no tuple processed twice" law:
      a tuple buffered across a pause–drain–resume handoff may be
      consumed at most once; with [drained] (the default) the
      inequality must be an equality ("exactly once"), and
      [migrate:drained] additionally requires zero backlog and losses;
    - [migrate:sink-equal] ([drained]) — the sink-output multisets of
      the two runs agree up to [cutoff]; or [migrate:sink-subset]
      (faulted runs, loss-monotone networks) — migration plus faults
      never {e invent} outputs the never-migrated run lacks;
    - [migrate:consumed-eq] ([drained]) — per-arc consumption counts
      match the never-migrated run exactly.

    [baseline] must come from the same network, inputs, and fault
    schedule, differing only in migrations. *)

val latency_not_improved :
  ?tol:float ->
  healthy:Dsim.Sim_metrics.t ->
  faulted:Dsim.Sim_metrics.t ->
  unit ->
  check
(** Latency monotonicity under added faults: mean and p99 latency of the
    faulted run must not beat the healthy run by more than the relative
    tolerance (default 5%). *)

val recovery_valid :
  dead:bool array -> before:int array -> recovery:int array -> check list
(** A crash recovery must place every operator on a live node and must
    not move survivors (migration is expensive — the paper's premise).
    This is the check a broken recovery path (orphans dropped instead of
    re-placed) trips. *)

val degraded_volume :
  ?pool:Parallel.Pool.t ->
  ?samples:int ->
  problem:Rod.Problem.t ->
  assignment:int array ->
  dead:bool array ->
  unit ->
  Feasible.Volume.estimate
(** QMC feasible-volume estimate of an assignment on a cluster with the
    [dead] nodes' capacities zeroed, sampled over the {e full} cluster's
    ideal simplex — so healthy and degraded plans of one problem share a
    denominator ([ratio]s are directly comparable, and comparable
    against [Rod.Failure]'s capacity bound).  With no dead node this is
    an ordinary volume estimate. *)

val crash_volume_bounds :
  ?pool:Parallel.Pool.t ->
  ?samples:int ->
  problem:Rod.Problem.t ->
  schedule:Dsim.Fault.schedule ->
  unit ->
  check list
(** For every crash of the schedule (with all earlier crashes applied):
    the recovered plan's feasible volume, estimated by QMC over the
    {e original} ideal simplex with dead capacities zeroed, must not
    exceed [Rod.Failure]'s capacity bound [((C_live / C_T))^d] of the
    ideal volume (plus three standard errors of the estimate).  Unlike
    re-sampling the degraded simplex, this estimate could exceed the
    bound if recovery or accounting were wrong — which is what makes it
    an oracle. *)

val replay_identical : name:string -> run:(unit -> string) -> check
(** Determinism oracle: render the same seeded run twice and require
    byte-identical output. *)

val split_differential :
  ?drained:bool ->
  split:Keyed.Semantic.t ->
  injected:int array ->
  cutoff:float ->
  split_dist:Spe.Dist_executor.result ->
  baseline_dist:Spe.Dist_executor.result ->
  logical:Spe.Executor.result ->
  unit ->
  check list
(** Differential oracles pinning a keyed split run against the unsplit
    baseline of the same inputs:

    - [split:opV.I] — per-arc flow conservation on the split network
      (equalities when [drained], the default);
    - [split:sink-equal] / [split:sink-subset] — sink multisets of the
      split and unsplit runs agree up to [cutoff], with route filters,
      replicas and the merger mapped back to the split operator's
      index ([`Subset]: a faulted split run must not {e invent}
      outputs);
    - [split:routing] — on the recorded logical run, every tuple a
      replica consumed belongs to a key the partitioner routes to it
      (a corrupted per-replica route table trips this);
    - [split:coverage] — per key, replica consumption equals splitter
      emission: no key lost, none duplicated;
    - [split:replicas-used] — at least two replicas consumed tuples
      (guards the scenario against degenerating into no-op splits).

    [logical] must be an [Spe.Executor.run ~record:true] of the
    {e split} network; [baseline_dist] an unsplit run of the same
    inputs. *)
