(* rodlint: deterministic *)

module Vec = Linalg.Vec
module Local_search = Rod.Local_search

type move = {
  op : int;
  from_node : int;
  to_node : int;
  gain : int;
  cost : float;
}

type outcome = {
  accepted : bool;
  moves : move list;
  assignment : int array;
  ratio_before : float;
  ratio_after : float;
  margin_before : Margin.t option;
  margin_after : Margin.t option;
  samples : int;
  cost : float;
}

(* Per-node utilization of a raw assignment at a rate point. *)
let utilizations problem ~assignment ~rates =
  let n = Rod.Problem.n_nodes problem in
  let u = Array.make n 0. in
  Array.iteri
    (fun j node ->
      u.(node) <- u.(node) +. Vec.dot (Rod.Problem.op_load problem j) rates)
    assignment;
  let caps = problem.Rod.Problem.caps in
  Array.iteri (fun i load -> u.(i) <- load /. caps.(i)) u;
  u

let max_utilization = Array.fold_left Float.max 0.

(* Phase 1: while the placement is infeasible at [rates], move the
   operator off the hottest node whose relocation minimizes the
   resulting maximum utilization.  Strict improvement required;
   first-found tie-break (lowest op, then lowest node). *)
let repair_margin problem scorer ~assignment ~rates ~cost_of budget =
  let caps = problem.Rod.Problem.caps in
  let m = Rod.Problem.n_ops problem in
  let n = Rod.Problem.n_nodes problem in
  let acc = ref [] in
  let budget = ref budget in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    continue_ := false;
    let u = utilizations problem ~assignment ~rates in
    let cur = max_utilization u in
    if cur > 1. then begin
      let hot = ref 0 in
      Array.iteri (fun i ui -> if ui > u.(!hot) then hot := i) u;
      let hot = !hot in
      (* Best (resulting-max, op, dest); strict [<] keeps the first. *)
      let best = ref None in
      for j = 0 to m - 1 do
        if assignment.(j) = hot then begin
          let demand = Vec.dot (Rod.Problem.op_load problem j) rates in
          for i = 0 to n - 1 do
            if i <> hot then begin
              let u_hot = u.(hot) -. (demand /. caps.(hot))
              and u_dst = u.(i) +. (demand /. caps.(i)) in
              let nm = ref (Float.max u_hot u_dst) in
              Array.iteri
                (fun k uk -> if k <> hot && k <> i then nm := Float.max !nm uk)
                u;
              if
                !nm < cur
                &&
                match !best with Some (bm, _, _) -> !nm < bm | None -> true
              then best := Some (!nm, j, i)
            end
          done
        end
      done;
      match !best with
      | None -> ()
      | Some (_, j, i) ->
        let gain = Local_search.gain scorer j ~to_node:i in
        Local_search.move scorer j ~from_node:hot ~to_node:i;
        assignment.(j) <- i;
        acc := { op = j; from_node = hot; to_node = i; gain; cost = cost_of j }
               :: !acc;
        decr budget;
        continue_ := true
    end
  done;
  (!budget, List.rev !acc)

(* Phase 2: greedy positive-gain relocations ranked by
   gain / (1 + cost).  [relocation_positive_bound] proves most
   operators skippable; its bound also prunes sweeps that cannot beat
   the running best.  First-found tie-break. *)
let polish_volume problem scorer ~assignment ~cost_of budget =
  let m = Rod.Problem.n_ops problem in
  let n = Rod.Problem.n_nodes problem in
  let acc = ref [] in
  let budget = ref budget in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    continue_ := false;
    (* Best (score, gain, op, dest); strict [>] keeps the first. *)
    let best = ref None in
    for j = 0 to m - 1 do
      let denom = 1. +. cost_of j in
      let bound = Local_search.relocation_positive_bound scorer j in
      let beats_best =
        match !best with
        | Some (bs, _, _, _) -> float_of_int bound /. denom > bs
        | None -> bound > 0
      in
      if beats_best then begin
        let gains = Local_search.relocation_gains scorer j in
        for i = 0 to n - 1 do
          let g = gains.(i) in
          if g > 0 then begin
            let score = float_of_int g /. denom in
            match !best with
            | Some (bs, _, _, _) when score <= bs -> ()
            | _ -> best := Some (score, g, j, i)
          end
        done
      end
    done;
    match !best with
    | None -> ()
    | Some (_, gain, j, i) ->
      let from_node = assignment.(j) in
      Local_search.move scorer j ~from_node ~to_node:i;
      assignment.(j) <- i;
      acc := { op = j; from_node; to_node = i; gain; cost = cost_of j } :: !acc;
      decr budget;
      continue_ := true
  done;
  (!budget, List.rev !acc)

let replan ?pool ?(samples = 2048) ?rates ~budget ~cost_of problem ~assignment =
  let m = Rod.Problem.n_ops problem in
  let n = Rod.Problem.n_nodes problem in
  if Array.length assignment <> m then
    invalid_arg "Replanner.replan: assignment length";
  Array.iter
    (fun node ->
      if node < 0 || node >= n then
        invalid_arg "Replanner.replan: assignment node out of range")
    assignment;
  if budget < 0 then invalid_arg "Replanner.replan: negative budget";
  if samples <= 0 then invalid_arg "Replanner.replan: samples must be positive";
  let margin_of a =
    Option.map (fun r -> Margin.of_assignment problem ~assignment:a ~rates:r)
      rates
  in
  let margin_before = margin_of assignment in
  (* One attempt from the original assignment; its own scorer and its
     own working copy of the array (the scorer shares, not copies). *)
  let attempt ~with_repair =
    let working = Array.copy assignment in
    let scorer = Local_search.make_scorer ?pool problem working samples in
    let feas_before = Local_search.feasible scorer in
    let left, repair_moves =
      match rates with
      | Some rates when with_repair ->
        repair_margin problem scorer ~assignment:working ~rates ~cost_of budget
      | _ -> (budget, [])
    in
    let _, polish_moves =
      polish_volume problem scorer ~assignment:working ~cost_of left
    in
    let moves = repair_moves @ polish_moves in
    ( working,
      moves,
      feas_before,
      Local_search.feasible scorer,
      Local_search.n_samples scorer )
  in
  let gated (working, moves, feas_before, feas_after, n_samples) =
    let margin_after = margin_of working in
    let margin_ok =
      match (margin_before, margin_after) with
      | Some b, Some a -> a.Margin.margin >= b.Margin.margin
      | _ -> true
    in
    let accepted = moves <> [] && feas_after >= feas_before && margin_ok in
    if accepted then
      Some
        {
          accepted = true;
          moves;
          assignment = working;
          ratio_before = float_of_int feas_before /. float_of_int n_samples;
          ratio_after = float_of_int feas_after /. float_of_int n_samples;
          margin_before;
          margin_after;
          samples = n_samples;
          cost = List.fold_left (fun s (mv : move) -> s +. mv.cost) 0. moves;
        }
    else None
  in
  let first = attempt ~with_repair:true in
  match gated first with
  | Some outcome -> outcome
  | None -> (
    (* The repair phase may trade volume for margin past the gate; a
       volume-only retry can only grow the ratio. *)
    let retry =
      match margin_before with
      | Some mb when mb.Margin.margin < 0. && budget > 0 ->
        let ((_, moves, _, _, _) as a) = attempt ~with_repair:false in
        if moves = [] then None else gated a
      | _ -> None
    in
    match retry with
    | Some outcome -> outcome
    | None ->
      let _, _, feas_before, _, n_samples = first in
      let ratio = float_of_int feas_before /. float_of_int n_samples in
      {
        accepted = false;
        moves = [];
        assignment = Array.copy assignment;
        ratio_before = ratio;
        ratio_after = ratio;
        margin_before;
        margin_after = margin_before;
        samples = n_samples;
        cost = 0.;
      })
