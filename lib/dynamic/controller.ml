(* rodlint: obs *)
(* rodlint: deterministic *)
(* rodproto: protocol — the controller owns a deployed assignment; all
   writes to it are Plan_check-gated through [create] *)

module Vec = Linalg.Vec

let obs_margin =
  Obs.gauge ~help:"Feasible-set margin at the last control decision"
    "rod_ctl_margin"

let obs_headroom =
  Obs.gauge ~help:"Feasible boundary scale along the observed rate ray"
    "rod_ctl_headroom"

let obs_replans =
  Obs.counter ~help:"Accepted replans" "rod_ctl_replans_total"

let obs_rejects =
  Obs.counter ~help:"Replan attempts rejected by the acceptance gate"
    "rod_ctl_rejects_total"

let obs_holds =
  Obs.counter ~help:"Control decisions that held the placement"
    "rod_ctl_holds_total"

let obs_moves =
  Obs.counter ~help:"Migrations issued by accepted replans"
    "rod_ctl_moves_total"

type config = {
  threshold : float;
  budget : int;
  samples : int;
  smoothing : float;
  cooldown : float;
}

let default_config =
  { threshold = 0.1; budget = 3; samples = 1024; smoothing = 0.5; cooldown = 2. }

type action =
  | Hold
  | Replanned of Replanner.outcome
  | Rejected of Replanner.outcome

type decision = {
  time : float;
  rates : Vec.t;
  margin : Margin.t;
  action : action;
}

type t = {
  problem : Rod.Problem.t;
  config : config;
  cost_of : int -> float;
  pool : Parallel.Pool.t option;
  mutable smoothed : Vec.t option;
  mutable last_attempt : float;
  mutable assignment : int array;  (* rodproto: role deployed-assignment *)
  mutable log : decision list;  (* newest first *)
}

let create ?pool ?(config = default_config) ?(cost_of = fun _ -> 0.) problem
    ~assignment =
  if config.threshold >= 1. then
    invalid_arg "Controller.create: threshold must be < 1";
  if config.budget < 0 then invalid_arg "Controller.create: negative budget";
  if config.samples <= 0 then
    invalid_arg "Controller.create: samples must be positive";
  if config.smoothing <= 0. || config.smoothing > 1. then
    invalid_arg "Controller.create: smoothing in (0, 1]";
  if config.cooldown < 0. then
    invalid_arg "Controller.create: negative cooldown";
  (* Admission gate: the load model must be well-formed before this
     assignment becomes the controller's deployed truth — the same
     check Deploy runs, so every later write to [t.assignment] is
     justified against this gate. *)
  Analysis.Plan_check.assert_ok ~what:"controller admission"
    (Analysis.Plan_check.check_matrix ~lo:problem.Rod.Problem.lo
       ~caps:problem.Rod.Problem.caps ());
  (* Validates length and node range. *)
  ignore (Rod.Plan.make problem assignment);
  {
    problem;
    config;
    cost_of;
    pool;
    smoothed = None;
    last_attempt = Float.neg_infinity;
    assignment = Array.copy assignment;
    log = [];
  }

let assignment t = Array.copy t.assignment

let cost_of t = t.cost_of

let observe t ~time ~rates ~assignment =
  if Array.length assignment <> Array.length t.assignment then
    invalid_arg "Controller.observe: assignment length";
  (* The engine's view wins: crash recoveries and aborted migrations
     remap the placement without telling the controller. *)
  (* rodproto: gated-by Dynamic.Controller.create — resync to the engine's Plan_check-admitted truth *)
  Array.blit assignment 0 t.assignment 0 (Array.length assignment);
  let smoothed =
    match t.smoothed with
    | None -> Vec.copy rates
    | Some prev -> Margin.smooth ~alpha:t.config.smoothing ~prev rates
  in
  t.smoothed <- Some smoothed;
  let margin =
    Margin.of_assignment t.problem ~assignment:t.assignment ~rates:smoothed
  in
  Obs.Gauge.set obs_margin margin.Margin.margin;
  if Float.is_finite margin.Margin.headroom then
    Obs.Gauge.set obs_headroom margin.Margin.headroom;
  let record action =
    t.log <- { time; rates = Vec.copy smoothed; margin; action } :: t.log
  in
  if
    margin.Margin.margin >= t.config.threshold
    || time -. t.last_attempt < t.config.cooldown
  then begin
    Obs.Counter.incr obs_holds;
    record Hold;
    []
  end
  else begin
    t.last_attempt <- time;
    let outcome =
      Obs.with_span ~cat:"ctl"
        ~args:[ ("time", Obs.Export.float_str time) ]
        "ctl.replan"
        (fun () ->
          Replanner.replan ?pool:t.pool ~samples:t.config.samples
            ~rates:smoothed ~budget:t.config.budget ~cost_of:t.cost_of
            t.problem ~assignment:t.assignment)
    in
    if outcome.Replanner.accepted then begin
      (* rodproto: gated-by Dynamic.Controller.create — replans refine the admitted model *)
      Array.blit outcome.Replanner.assignment 0 t.assignment 0
        (Array.length t.assignment);
      Obs.Counter.incr obs_replans;
      Obs.Counter.add obs_moves (List.length outcome.Replanner.moves);
      record (Replanned outcome);
      List.map
        (fun mv -> (mv.Replanner.op, mv.Replanner.to_node))
        outcome.Replanner.moves
    end
    else begin
      Obs.Counter.incr obs_rejects;
      record (Rejected outcome);
      []
    end
  end

let decisions t = List.rev t.log

(* --- deterministic JSON export (schema rod-replan-log/1) --- *)

let json_float f = if Float.is_finite f then Obs.Export.float_str f else "null"

let add_vec buf v =
  Buffer.add_char buf '[';
  Array.iteri
    (fun k x ->
      if k > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (json_float x))
    v;
  Buffer.add_char buf ']'

let add_moves buf moves =
  Buffer.add_char buf '[';
  List.iteri
    (fun k (mv : Replanner.move) ->
      if k > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"op\":%d,\"from\":%d,\"to\":%d,\"gain\":%d,\"cost\":%s}"
           mv.Replanner.op mv.Replanner.from_node mv.Replanner.to_node
           mv.Replanner.gain
           (json_float mv.Replanner.cost)))
    moves;
  Buffer.add_char buf ']'

let add_outcome buf (o : Replanner.outcome) =
  Buffer.add_string buf ",\"moves\":";
  add_moves buf o.Replanner.moves;
  Buffer.add_string buf
    (Printf.sprintf
       ",\"ratio_before\":%s,\"ratio_after\":%s,\"transfer_cost\":%s"
       (json_float o.Replanner.ratio_before)
       (json_float o.Replanner.ratio_after)
       (json_float o.Replanner.cost))

let decisions_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schema\":\"rod-replan-log/1\",\"decisions\":[";
  List.iteri
    (fun k d ->
      if k > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"time\":%s,\"rates\":" (json_float d.time));
      add_vec buf d.rates;
      Buffer.add_string buf
        (Printf.sprintf
           ",\"margin\":%s,\"headroom\":%s,\"utilization\":%s,\"action\":"
           (json_float d.margin.Margin.margin)
           (json_float d.margin.Margin.headroom)
           (json_float d.margin.Margin.utilization));
      (match d.action with
      | Hold -> Buffer.add_string buf "\"hold\""
      | Replanned o ->
        Buffer.add_string buf "\"replan\"";
        add_outcome buf o
      | Rejected o ->
        Buffer.add_string buf "\"reject\"";
        add_outcome buf o);
      Buffer.add_char buf '}')
    (decisions t);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let engine_config ?(interval = 1.) ?(migration_delay = 0.3)
    ?(drain_delay = 0.05) t =
  {
    Dsim.Engine.interval;
    migration_delay;
    drain_delay;
    state_delay = t.cost_of;
    decide =
      (fun ~time ~utilization:_ ~op_cpu:_ ~rates ~assignment ->
        observe t ~time ~rates ~assignment);
  }
