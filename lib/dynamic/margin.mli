(** Feasible-set margin of a placement at an observed rate point — the
    quantity the dynamic controller watches.

    The static ROD objective is the {e size} of the feasible set; at
    runtime the interesting question becomes {e where the observed rate
    point sits inside it}.  Both readings below reuse the feasibility
    machinery of {!Feasible.Volume} and {!Feasible.Geometry}:

    - [headroom] is the boundary scale along the observed ray
      ({!Feasible.Volume.max_scale}): [headroom * rates] sits exactly on
      the feasible boundary, so [headroom > 1] means the point is
      interior and [headroom < 1] means the placement is already
      infeasible at the observed rates.
    - [margin = 1 - 1/headroom] is the same information as a bounded
      fraction: how much of the ray from the origin through the rate
      point is still unused.  [0] on the boundary, negative when
      infeasible, [1] when the system is idle.  Because every node
      constraint is linear, [1/headroom] equals the maximum node
      utilization, so [margin = 1 - max_i u_i].
    - [distance] is the §3.3 normalized-space reading: the minimum
      plane distance from the normalized rate point to any node
      hyperplane ({!Feasible.Geometry.min_plane_distance}) — the radius
      of the largest rate ball guaranteed feasible around the point. *)

type t = {
  headroom : float; (* rodunits: 1 *)
      (** Boundary scale along the observed ray; [infinity] when the
          rate point is zero (an idle system constrains nothing). *)
  margin : float; (* rodunits: 1 *)
      (** [1 - 1/headroom], in [(-inf, 1]]. *)
  distance : float; (* rodunits: 1 *)
      (** Minimum normalized plane distance from the rate point to a
          node hyperplane; negative when some node is over capacity. *)
  utilization : float; (* rodunits: 1 *)
      (** Maximum node utilization at [rates]. *)
}

val measure : Rod.Plan.t -> rates:Linalg.Vec.t -> t
(** Margin of a plan at a rate point in the problem's variable space
    (dimension {!Rod.Problem.dim}; rates must be nonnegative).
    Deterministic: pure closed-form geometry, no sampling. *)

val of_assignment :
  Rod.Problem.t -> assignment:int array -> rates:Linalg.Vec.t -> t
(** {!measure} of [Rod.Plan.make problem assignment]. *)

val smooth : alpha:float -> prev:Linalg.Vec.t -> Linalg.Vec.t -> Linalg.Vec.t
(* rodunits: alpha:1 -> _ *)
(** Exponential rate smoothing, [alpha * now + (1 - alpha) * prev] with
    [alpha] in [(0, 1]] — the controller's defense against reacting to a
    single bursty control interval. *)
