(* rodlint: deterministic *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat

type t = {
  headroom : float;
  margin : float;
  distance : float;
  utilization : float;
}

let measure plan ~rates =
  let problem = plan.Rod.Plan.problem in
  let d = Rod.Problem.dim problem in
  if Vec.dim rates <> d then invalid_arg "Margin.measure: rate dimension";
  Array.iter
    (fun r ->
      if r < 0. || Float.is_nan r then
        invalid_arg "Margin.measure: rates must be nonnegative")
    rates;
  let w = Rod.Plan.weight_matrix plan in
  let rows = List.init (Mat.rows w) (Mat.row w) in
  if Vec.norm1 rates <= 0. then
    (* An idle system: no constraint binds along a zero ray. *)
    {
      headroom = infinity;
      margin = 1.;
      distance = Feasible.Geometry.min_plane_distance rows;
      utilization = 0.;
    }
  else begin
    let ln = Rod.Plan.node_loads plan in
    let caps = problem.Rod.Problem.caps in
    let headroom = Feasible.Volume.max_scale ~ln ~caps ~direction:rates in
    let utilization = if headroom = infinity then 0. else 1. /. headroom in
    let point = Rod.Problem.normalized_point problem rates in
    {
      headroom;
      margin = 1. -. utilization;
      distance = Feasible.Geometry.min_plane_distance ~point rows;
      utilization;
    }
  end

let of_assignment problem ~assignment ~rates =
  measure (Rod.Plan.make problem assignment) ~rates

let smooth ~alpha ~prev rates =
  if alpha <= 0. || alpha > 1. then invalid_arg "Margin.smooth: alpha in (0, 1]";
  if Vec.dim prev <> Vec.dim rates then invalid_arg "Margin.smooth: dimensions";
  Vec.init (Vec.dim rates) (fun k ->
      (alpha *. rates.(k)) +. ((1. -. alpha) *. prev.(k)))
