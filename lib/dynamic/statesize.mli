(** Per-operator state-transfer cost model — the price term of the
    budgeted replanner's objective and the per-operator pause of the
    pause–drain–resume protocol.

    Migrating an operator means shipping its live state: a windowed
    operator holds roughly [window * rate] tuples per input side, a
    stateless one holds nothing.  The model turns that population into
    transfer {e seconds} ([per_tuple] each), so the same number serves
    both as the replanner's move cost and as the [state_delay] the
    engines add to the handoff pause — moving a heavy join really does
    pause longer than moving a filter. *)

type model = {
  per_tuple : float; (* rodunits: sim-sec/tuple *)
      (** Transfer seconds per buffered state tuple. *)
  rate_hint : float; (* rodunits: rate *)
      (** Assumed tuples/s per input of a windowed operator (state
          population is window-bound, not measured). *)
}

val default : model
(** [per_tuple = 2e-5] (50k state tuples per second of pause),
    [rate_hint = 100.]. *)

val graph_cost : ?model:model -> Query.Graph.t -> int -> float
(* rodunits: sim-sec *)
(** Transfer seconds for operator [j] of a cost-model graph: joins hold
    [window * rate_hint] tuples per side, everything else is
    stateless. *)

val network_cost : ?model:model -> Spe.Network.t -> int -> float
(* rodunits: sim-sec *)
(** Transfer seconds for operator [j] of a semantic network: equi-joins
    hold a window per side, aggregates and distinct one window;
    filters, maps, projections and unions are stateless. *)

val split_cost :
  ?model:model -> distinct_keys:float -> Keyed.Split.t -> int -> float
(* rodunits: distinct_keys:tuple -> sim-sec *)
(** Transfer seconds for operator [j] of a {e split} graph: a replica's
    state is its key range, [share * distinct_keys] entries (use the
    keyed HyperLogLog estimate), so rebalancing a split operator under
    the replanner's move budget prices the key-range handoff; the
    splitter and merger are stateless, every other operator defers to
    {!graph_cost}. *)
