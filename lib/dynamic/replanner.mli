(** Budgeted replanning: repair a placement under a migration budget.

    A replan is not a fresh placement — migrating an operator costs a
    pause proportional to its live state ({!Statesize}), so the online
    question is {e which few moves buy the most resilience}.  This
    module runs a greedy move-ranked variant of {!Rod.Local_search}
    limited to [budget] relocations, in two phases over the shared
    incremental scorer:

    + {b margin repair} (only when [rates] are supplied and the
      placement is infeasible at them): repeatedly move an operator off
      the most-utilized node so as to minimize the resulting maximum
      node utilization — the fastest way back inside the feasible set;
    + {b volume polish}: greedy single-operator relocations ranked by
      [feasibility gain / (1 + cost_of op)], so a stateless filter
      migrates before an equally-helpful windowed join.

    The result is gated: a replan is [accepted] only if the modeled
    feasible-set ratio did not decrease {e and} (when [rates] are
    given) the margin did not decrease.  If the two-phase attempt fails
    the gate, a volume-only attempt from the original assignment is
    tried (its moves all have strictly positive gain, so its ratio can
    only grow); if that fails too the original assignment is returned
    unchanged with [accepted = false].

    Determinism: the scorer primitives are bit-identical across pool
    sizes, ties are broken first-found (lowest operator, then lowest
    node), and no randomness is consulted — the same inputs produce the
    same outcome for every pool size and on every rerun. *)

type move = {
  op : int;
  from_node : int;
  to_node : int;
  gain : int;  (** Feasible-sample delta of this move when applied. *)
  cost : float; (* rodunits: sim-sec *)
      (** State-transfer seconds, [cost_of op]. *)
}

type outcome = {
  accepted : bool;
  moves : move list;  (** In application order; [[]] when rejected. *)
  assignment : int array;
      (** Resulting assignment (the original when rejected). *)
  ratio_before : float; (* rodunits: 1 *)
      (** Feasible QMC ratio of the input placement. *)
  ratio_after : float; (* rodunits: 1 *)
      (** Ratio of [assignment] on the same sample. *)
  margin_before : Margin.t option;  (** Present iff [rates] was given. *)
  margin_after : Margin.t option;
  samples : int;  (** Shared QMC sample size the ratios are measured on. *)
  cost : float; (* rodunits: sim-sec *)
      (** Total state-transfer seconds of [moves]. *)
}

val replan :
  ?pool:Parallel.Pool.t ->
  ?samples:int ->
  ?rates:Linalg.Vec.t ->
  budget:int ->
  cost_of:(int -> float) ->
  Rod.Problem.t ->
  assignment:int array ->
  outcome
(** [replan ~budget ~cost_of problem ~assignment] proposes at most
    [budget] relocations (default 2048 samples, global pool).  [rates]
    — the observed rate point, in the problem's variable space —
    enables the margin-repair phase and the margin acceptance gate.
    The input assignment is not mutated.  Raises [Invalid_argument] on
    a malformed assignment, negative budget, nonpositive sample count,
    or rates of the wrong dimension. *)
