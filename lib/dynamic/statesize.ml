(* rodlint: deterministic *)

type model = {
  per_tuple : float;
  rate_hint : float;
}

let default = { per_tuple = 2e-5; rate_hint = 100. }

let seconds model tuples = model.per_tuple *. Float.max 0. tuples

let graph_cost ?(model = default) graph j =
  match (Query.Graph.op graph j).Query.Op.kind with
  | Query.Op.Linear _ | Query.Op.Var_selectivity _ -> 0.
  | Query.Op.Join { window; _ } ->
    seconds model (2. *. window *. model.rate_hint)

let network_cost ?(model = default) network j =
  match Spe.Network.op network j with
  | Spe.Sop.Filter _ | Spe.Sop.Map _ | Spe.Sop.Project _ | Spe.Sop.Union _ ->
    0.
  | Spe.Sop.Equi_join { window; _ } ->
    seconds model (2. *. window *. model.rate_hint)
  | Spe.Sop.Aggregate { window; _ } | Spe.Sop.Distinct { window; _ } ->
    seconds model (window *. model.rate_hint)

(* A split replica's state is its key range: one state entry per
   distinct key routed to it.  Moving the replica means handing that
   key range off to another node, so the transfer population is the
   replica's share of the operator's distinct keys — the quantity the
   keyed HyperLogLog estimates. *)
let split_cost ?(model = default) ~distinct_keys (split : Keyed.Split.t) j =
  let replica = ref (-1) in
  Array.iteri
    (fun r idx -> if idx = j then replica := r)
    split.Keyed.Split.replica_ops;
  if !replica >= 0 then
    seconds model (split.Keyed.Split.shares.(!replica) *. Float.max 0. distinct_keys)
  else if j = split.Keyed.Split.splitter || j = split.Keyed.Split.merger then 0.
  else graph_cost ~model split.Keyed.Split.graph j
