(* rodlint: deterministic *)

type model = {
  per_tuple : float;
  rate_hint : float;
}

let default = { per_tuple = 2e-5; rate_hint = 100. }

let seconds model tuples = model.per_tuple *. Float.max 0. tuples

let graph_cost ?(model = default) graph j =
  match (Query.Graph.op graph j).Query.Op.kind with
  | Query.Op.Linear _ | Query.Op.Var_selectivity _ -> 0.
  | Query.Op.Join { window; _ } ->
    seconds model (2. *. window *. model.rate_hint)

let network_cost ?(model = default) network j =
  match Spe.Network.op network j with
  | Spe.Sop.Filter _ | Spe.Sop.Map _ | Spe.Sop.Project _ | Spe.Sop.Union _ ->
    0.
  | Spe.Sop.Equi_join { window; _ } ->
    seconds model (2. *. window *. model.rate_hint)
  | Spe.Sop.Aggregate { window; _ } | Spe.Sop.Distinct { window; _ } ->
    seconds model (window *. model.rate_hint)
