(** The online margin controller: watch the observed rate point, replan
    when the feasible-set margin erodes.

    Each {!observe} is one control decision: smooth the rate reading
    ({!Margin.smooth}), measure the margin of the {e engine-reported}
    assignment ({!Margin.of_assignment}), and — when the margin falls
    below the threshold and the cooldown has elapsed — run the budgeted
    {!Replanner} and hand the accepted moves back as migrations.  The
    controller trusts the engine's assignment over its own bookkeeping
    (crash recoveries remap placements behind its back), publishes
    [rod_ctl_*] metrics and a [ctl.replan] span through [rod.obs], and
    keeps a decision log exportable as deterministic JSON
    ([rod-replan-log/1]) for golden-fixture pinning.

    Determinism: decisions are pure functions of the observation
    sequence (the replanner is pool-size-invariant and nothing consults
    a clock or RNG), so the decision log is bit-identical across pool
    sizes and reruns. *)

type config = {
  threshold : float; (* rodunits: 1 *)
      (** Replan when [margin < threshold] (default 0.1 — i.e. some
          node above 90% modeled utilization). *)
  budget : int;  (** Migration budget per replan (default 3). *)
  samples : int;  (** Replanner QMC sample size (default 1024). *)
  smoothing : float; (* rodunits: 1 *)
      (** EWMA [alpha] applied to observed rates (default 0.5). *)
  cooldown : float; (* rodunits: sim-sec *)
      (** Minimum seconds between replan attempts (default 2). *)
}

val default_config : config

type action =
  | Hold  (** Margin healthy, or cooling down. *)
  | Replanned of Replanner.outcome  (** Accepted; moves were returned. *)
  | Rejected of Replanner.outcome
      (** The replanner found nothing passing its acceptance gate. *)

type decision = {
  time : float; (* rodunits: sim-sec *)
  rates : Linalg.Vec.t;  (** Smoothed rates the decision used. *)
  margin : Margin.t;  (** Margin of the current placement at [rates]. *)
  action : action;
}

type t

val create :
  ?pool:Parallel.Pool.t ->
  ?config:config ->
  ?cost_of:(int -> float) ->
  Rod.Problem.t ->
  assignment:int array ->
  t
(** A controller for the given problem starting from [assignment]
    (copied).  [cost_of] is the per-operator state-transfer cost in
    seconds (default: everything free); wire {!Statesize.graph_cost}
    or {!Statesize.network_cost} here. *)

val observe : t -> time:float -> rates:Linalg.Vec.t -> assignment:int array -> (int * int) list
(* rodunits: time:sim-sec -> _ *)
(** One control decision at [time] given raw observed [rates] and the
    engine's current [assignment] (adopted as ground truth).  Returns
    the migrations to start — non-empty only on an accepted replan,
    never more than [budget] moves.  [time] must not decrease across
    calls. *)

val assignment : t -> int array
(** The controller's current view of the placement (a copy). *)

val cost_of : t -> int -> float
(* rodunits: sim-sec *)
(** The state-transfer cost model the controller was built with (also
    the natural [state_delay] for the engines). *)

val decisions : t -> decision list
(** All decisions, oldest first. *)

val decisions_json : t -> string
(** The decision log as canonical JSON, schema [rod-replan-log/1]:
    stable field order, {!Obs.Export.float_str} number formatting,
    [null] for an infinite headroom — byte-identical across reruns and
    pool sizes, suitable for golden fixtures. *)

val engine_config :
  ?interval:float ->
  ?migration_delay:float ->
  ?drain_delay:float ->
  t ->
  Dsim.Engine.dynamic_config
(** The controller packaged for {!Dsim.Engine.run}: [decide] feeds each
    tick's observed rates into {!observe}, and [state_delay] is the
    controller's [cost_of].  Defaults: 1 s interval, 300 ms migration
    pause, 50 ms drain window. *)
