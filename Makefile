.PHONY: all build test bench examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

examples:
	dune exec examples/quickstart.exe
	dune exec examples/network_monitoring.exe
	dune exec examples/financial_compliance.exe
	dune exec examples/join_queries.exe
	dune exec examples/clustered_deployment.exe
	dune exec examples/end_to_end.exe

clean:
	dune clean
