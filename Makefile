.PHONY: all build test bench examples clean check bench-quick bench-ladder benchdiff chaos-quick keyed lint rodscan rodproto rodunits promcheck sarif

all: build

build:
	dune build @all

test:
	dune runtest

# The tier-1 gate: formatting (dune files) + build + lint + full test
# suite + the seeded chaos smoke run + the enforced perf diff (a fresh
# quick ladder record over the place/* and controller/* rungs, compared
# against the previous one; noisy fits with r^2 < 0.9 are skipped).
check:
	dune build @fmt
	dune build @all
	dune build @lint
	dune build @rodscan
	dune build @rodproto
	dune build @rodunits
	dune runtest
	dune build @chaos-quick
	dune build @keyed
	dune build @promcheck
	$(MAKE) bench-ladder
	$(MAKE) benchdiff

# rodlint over lib/ and bin/ (parse-tree rules), rodscan over the
# library typedtrees (interprocedural determinism taint, parallel race
# lint, hot-path allocation check), rodproto (migration-protocol
# typestate + gated-mutation analysis) and rodunits (dimensional
# analysis of the load-model arithmetic) — see DESIGN.md §10, §13 and
# §15 for the rule catalogues and escape hatches.
lint:
	dune build @lint @rodscan @rodproto @rodunits

# Typedtree analysis and its fixture self-test only.
rodscan:
	dune build @rodscan

# Protocol typestate verification and its fixture self-test only.
rodproto:
	dune build @rodproto

# Dimensional analysis and its fixture self-test only.
rodunits:
	dune build @rodunits

# One SARIF report for the whole static-analysis suite: run all four
# analyzers with --sarif and merge the per-tool logs into
# rod-analysis.sarif (one run per tool), the artifact the CI workflow
# uploads.  Exit status reflects the analyzers: any finding fails.
sarif:
	dune build @sarif

# Seeded fault-injection smoke suite: every chaos scenario in quick
# mode, judged by the differential oracles (fails the build on any
# oracle violation).
chaos-quick:
	dune build @chaos-quick

# Export Prometheus text from a seeded sim run and validate the
# exposition format (tools/promcheck).
promcheck:
	dune build @promcheck

# The keyed-parallelism gate alone: partitioner/sketch/split property
# suite (goldens, pool identity, tamper-negative oracle) plus the two
# keyed chaos scenarios.
keyed:
	dune build @keyed

bench:
	dune exec bench/main.exe

# Micro-benchmarks only, small quota; writes BENCH_rod.json next to the
# plain-text table so the perf trajectory across PRs stays diffable.
bench-quick:
	dune exec bench/main.exe -- --quick --micro-only

# The scale ladder only (under --micro-only, --only narrows by
# benchmark-name substring, comma-separated: `place/,controller/`
# selects every placement rung up to ROD-m10000-n256 plus the online
# replanner rung).  Appends a record to BENCH_rod.json.
bench-ladder:
	dune exec bench/main.exe -- --quick --micro-only --only place/,controller/

# Enforced perf gate (part of `check`): compares the newest
# BENCH_rod.json record against the previous one and fails on a >25%
# slowdown in any place/* or controller/* entry.  Entries with a poor
# OLS fit on either side (r^2 < 0.9) are shown but not judged — the
# estimate itself is noise, which is what keeps the gate enforceable
# on a shared box.
benchdiff:
	dune exec tools/benchdiff/benchdiff.exe -- BENCH_rod.json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/network_monitoring.exe
	dune exec examples/financial_compliance.exe
	dune exec examples/join_queries.exe
	dune exec examples/clustered_deployment.exe
	dune exec examples/end_to_end.exe

clean:
	dune clean
