(* promcheck FILE...

   Validates Prometheus text exposition format 0.0.4 as produced by
   [Obs.Export.prometheus]: metric/label name grammar, label quoting,
   value syntax (decimal, +Inf, -Inf, NaN), HELP/TYPE declared at most
   once per family and TYPE before any of the family's samples, and the
   histogram invariants (an le="+Inf" bucket whose count equals _count,
   cumulative bucket counts nondecreasing in le order, _sum and _count
   present).  Exits nonzero with file:line diagnostics on violation —
   the [@promcheck] alias runs it over a fresh rod_cli export so a
   format regression fails the tier-1 gate. *)

let usage = "usage: promcheck FILE..."

type family = {
  mutable mtype : string option;  (* counter / gauge / histogram / ... *)
  mutable help_seen : bool;
  mutable samples : int;  (* samples seen for this family *)
}

(* One histogram series (family + labels minus "le"): the material for
   the cross-line invariants, checked after the whole file is read. *)
type series = {
  mutable buckets : (float * float * int) list;  (* le, count, line *)
  mutable sum : (float * int) option;
  mutable count : (float * int) option;
}

let errors = ref 0

let err file line fmt =
  Printf.ksprintf
    (fun message ->
      incr errors;
      Printf.eprintf "%s:%d: %s\n" file line message)
    fmt

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_metric_name s =
  String.length s > 0 && is_name_start s.[0] && String.for_all is_name_char s

let valid_label_name s =
  String.length s > 0
  && is_name_start s.[0]
  && s.[0] <> ':'
  && String.for_all (fun c -> is_name_char c && c <> ':') s

let parse_value s =
  match s with
  | "+Inf" | "Inf" -> Some infinity
  | "-Inf" -> Some neg_infinity
  | "NaN" -> Some nan
  | _ -> float_of_string_opt s

(* The base family of a sample name: histogram series surface as
   <family>_bucket / _sum / _count, so strip a recognized suffix when
   the base carries a histogram TYPE. *)
let strip_suffix families name =
  let try_suffix suffix =
    let nl = String.length name and sl = String.length suffix in
    if nl > sl && String.sub name (nl - sl) sl = suffix then
      let base = String.sub name 0 (nl - sl) in
      match Hashtbl.find_opt families base with
      | Some fam when fam.mtype = Some "histogram" -> Some base
      | _ -> None
    else None
  in
  match List.find_map try_suffix [ "_bucket"; "_sum"; "_count" ] with
  | Some base -> base
  | None -> name

(* Parse {k="v",...} starting after the '{'; returns (labels, rest). *)
let parse_labels file line s =
  let n = String.length s in
  let labels = ref [] in
  let rec skip_ws i = if i < n && s.[i] = ' ' then skip_ws (i + 1) else i in
  let rec pairs i =
    let i = skip_ws i in
    if i >= n then begin
      err file line "unterminated label set";
      (None, n)
    end
    else if s.[i] = '}' then (Some (List.rev !labels), i + 1)
    else begin
      let start = i in
      let rec name_end j =
        if j < n && s.[j] <> '=' && s.[j] <> '}' then name_end (j + 1) else j
      in
      let eq = name_end i in
      if eq >= n || s.[eq] <> '=' then begin
        err file line "label without '=' in label set";
        (None, n)
      end
      else begin
        let lname = String.sub s start (eq - start) in
        if not (valid_label_name lname) then
          err file line "invalid label name %S" lname;
        if eq + 1 >= n || s.[eq + 1] <> '"' then begin
          err file line "label value for %S is not quoted" lname;
          (None, n)
        end
        else begin
          (* Scan the quoted value honoring backslash, quote and
             newline escapes. *)
          let buffer = Buffer.create 16 in
          let rec value j =
            if j >= n then begin
              err file line "unterminated label value for %S" lname;
              None
            end
            else if s.[j] = '\\' then
              if j + 1 >= n then begin
                err file line "dangling backslash in label value for %S" lname;
                None
              end
              else begin
                (match s.[j + 1] with
                | '\\' -> Buffer.add_char buffer '\\'
                | '"' -> Buffer.add_char buffer '"'
                | 'n' -> Buffer.add_char buffer '\n'
                | c -> err file line "bad escape '\\%c' in label value" c);
                value (j + 2)
              end
            else if s.[j] = '"' then Some (j + 1)
            else begin
              Buffer.add_char buffer s.[j];
              value (j + 1)
            end
          in
          match value (eq + 2) with
          | None -> (None, n)
          | Some after ->
            labels := (lname, Buffer.contents buffer) :: !labels;
            let after = skip_ws after in
            if after < n && s.[after] = ',' then pairs (after + 1)
            else if after < n && s.[after] = '}' then
              (Some (List.rev !labels), after + 1)
            else begin
              err file line "expected ',' or '}' after label value";
              (None, n)
            end
        end
      end
    end
  in
  pairs 0

let series_key family labels =
  family
  ^ String.concat ""
      (List.filter_map
         (fun (k, v) ->
           if k = "le" then None else Some ("\x00" ^ k ^ "\x01" ^ v))
         (List.sort compare labels))

let check_file file =
  let families : (string, family) Hashtbl.t = Hashtbl.create 64 in
  let histograms : (string, series) Hashtbl.t = Hashtbl.create 64 in
  let family name =
    match Hashtbl.find_opt families name with
    | Some f -> f
    | None ->
      let f = { mtype = None; help_seen = false; samples = 0 } in
      Hashtbl.add families name f;
      f
  in
  let total_samples = ref 0 in
  let ic = open_in_bin file in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let ln = !lineno in
       if line = "" then ()
       else if String.length line >= 1 && line.[0] = '#' then begin
         match String.split_on_char ' ' line with
         | "#" :: "HELP" :: name :: _ ->
           if not (valid_metric_name name) then
             err file ln "HELP for invalid metric name %S" name;
           let f = family name in
           if f.help_seen then err file ln "duplicate HELP for %s" name;
           f.help_seen <- true
         | "#" :: "TYPE" :: name :: rest ->
           if not (valid_metric_name name) then
             err file ln "TYPE for invalid metric name %S" name;
           let mtype = String.concat " " rest in
           if
             not
               (List.mem mtype
                  [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
           then err file ln "unknown TYPE %S for %s" mtype name;
           let f = family name in
           if f.mtype <> None then err file ln "duplicate TYPE for %s" name;
           if f.samples > 0 then
             err file ln "TYPE for %s after its samples" name;
           f.mtype <- Some mtype
         | _ -> ()  (* other comments are legal and ignored *)
       end
       else begin
         (* A sample: name[{labels}] value *)
         let n = String.length line in
         let rec name_end i =
           if i < n && is_name_char line.[i] then name_end (i + 1) else i
         in
         let stop = name_end 0 in
         let name = String.sub line 0 stop in
         if not (valid_metric_name name) then
           err file ln "invalid metric name at line start: %S" name
         else begin
           let labels, after =
             if stop < n && line.[stop] = '{' then
               parse_labels file ln
                 (String.sub line (stop + 1) (n - stop - 1))
               |> fun (labels, consumed) -> (labels, stop + 1 + consumed)
             else (Some [], stop)
           in
           match labels with
           | None -> ()  (* label parse already reported *)
           | Some labels ->
             (match
                List.sort compare (List.map fst labels)
                |> List.fold_left
                     (fun prev k ->
                       if Some k = prev then
                         err file ln "duplicate label %S on %s" k name;
                       Some k)
                     None
              with
             | _ -> ());
             let rest = String.sub line after (n - after) in
             let rest = String.trim rest in
             (match parse_value rest with
             | None -> err file ln "unparseable sample value %S" rest
             | Some value ->
               incr total_samples;
               let base = strip_suffix families name in
               let f = family base in
               f.samples <- f.samples + 1;
               if f.mtype = None then
                 err file ln "sample for %s before (or without) its TYPE" base;
               if f.mtype = Some "histogram" then begin
                 let key = series_key base labels in
                 let s =
                   match Hashtbl.find_opt histograms key with
                   | Some s -> s
                   | None ->
                     let s = { buckets = []; sum = None; count = None } in
                     Hashtbl.add histograms key s;
                     s
                 in
                 if name = base ^ "_bucket" then begin
                   match List.assoc_opt "le" labels with
                   | None -> err file ln "%s_bucket without an le label" base
                   | Some le -> (
                     match parse_value le with
                     | None -> err file ln "unparseable le=%S" le
                     | Some le -> s.buckets <- (le, value, ln) :: s.buckets)
                 end
                 else if name = base ^ "_sum" then s.sum <- Some (value, ln)
                 else if name = base ^ "_count" then s.count <- Some (value, ln)
                 else err file ln "bare sample %s for histogram family" name
               end)
         end
       end
     done
   with End_of_file -> ());
  close_in ic;
  (* Cross-line histogram invariants. *)
  Hashtbl.iter
    (fun key s ->
      let shown =
        match String.index_opt key '\x00' with
        | Some i -> String.sub key 0 i
        | None -> key
      in
      let buckets = List.rev s.buckets in
      (match buckets with
      | [] -> err file 0 "histogram series %s has no buckets" shown
      | _ ->
        let sorted =
          List.stable_sort (fun (a, _, _) (b, _, _) -> Float.compare a b) buckets
        in
        if
          List.map (fun (le, _, _) -> le) sorted
          <> List.map (fun (le, _, _) -> le) buckets
        then
          err file 0 "histogram series %s buckets not in ascending le order"
            shown;
        ignore
          (List.fold_left
             (fun prev (le, count, ln) ->
               (match prev with
               | Some (_, prev_count) when count < prev_count ->
                 err file ln
                   "histogram series %s cumulative count decreases at le=%g"
                   shown le
               | _ -> ());
               Some (le, count))
             None sorted);
        let inf_bucket =
          List.find_opt (fun (le, _, _) -> le = infinity) sorted
        in
        (match inf_bucket with
        | None -> err file 0 "histogram series %s lacks an le=\"+Inf\" bucket" shown
        | Some (_, inf_count, ln) -> (
          match s.count with
          | Some (count, _) when count <> inf_count ->
            err file ln
              "histogram series %s: +Inf bucket %g <> _count %g" shown
              inf_count count
          | _ -> ())));
      if s.sum = None then err file 0 "histogram series %s lacks _sum" shown;
      if s.count = None then err file 0 "histogram series %s lacks _count" shown)
    histograms;
  (!total_samples, Hashtbl.length families)

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline usage;
    exit 2
  end;
  List.iter
    (fun file ->
      let samples, families = check_file file in
      if !errors = 0 then
        Printf.printf "promcheck: %s ok (%d samples, %d families)\n" file
          samples families)
    files;
  if !errors > 0 then begin
    Printf.eprintf "promcheck: %d error(s)\n" !errors;
    exit 1
  end
