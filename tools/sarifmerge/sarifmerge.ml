(* sarifmerge -o OUT IN.sarif...

   Merge SARIF 2.1.0 logs into one document whose [runs] array is the
   concatenation of the inputs' runs, in argument order — the shape
   code-scanning uploads want: one artifact, one run per analyzer.

   The extraction is a string-aware bracket scan rather than a full
   JSON parser (the repo deliberately carries no JSON dependency, and
   the inputs are our own Sarif emitter's output), but it is exact on
   any well-formed document: strings and escapes are respected, so
   brackets inside messages cannot unbalance the scan.

   Exits 1 — after writing OUT — when any merged run carries a result,
   so `make sarif` doubles as a gate while still always producing the
   artifact CI uploads. *)

let usage = "usage: sarifmerge -o OUT IN.sarif..."

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Position right after the opening '[' of the top-level "runs" key. *)
let find_runs_open text =
  let n = String.length text in
  let key = "\"runs\"" in
  let kl = String.length key in
  let rec scan i in_string escaped =
    if i >= n then None
    else if in_string then
      scan (i + 1) (escaped || text.[i] <> '"') (text.[i] = '\\' && not escaped)
    else if text.[i] = '"' && i + kl <= n && String.sub text i kl = key then begin
      (* Skip to the '[' that opens the array value. *)
      let rec to_bracket j =
        if j >= n then None
        else
          match text.[j] with
          | '[' -> Some (j + 1)
          | ':' | ' ' | '\t' | '\n' | '\r' -> to_bracket (j + 1)
          | _ -> None
      in
      to_bracket (i + kl)
    end
    else if text.[i] = '"' then scan (i + 1) true false
    else scan (i + 1) false false
  in
  scan 0 false false

(* The matching ']' for an array whose '[' sits just before [start]. *)
let find_close text start =
  let n = String.length text in
  let rec scan i depth in_string escaped =
    if i >= n then None
    else if in_string then
      scan (i + 1) depth (escaped || text.[i] <> '"')
        (text.[i] = '\\' && not escaped)
    else
      match text.[i] with
      | '"' -> scan (i + 1) depth true false
      | '[' | '{' -> scan (i + 1) (depth + 1) false false
      | ']' | '}' when depth > 0 -> scan (i + 1) (depth - 1) false false
      | ']' -> Some i
      | _ -> scan (i + 1) depth false false
  in
  scan start 0 false false

let runs_of path =
  let text = read_file path in
  match find_runs_open text with
  | None -> Error (Printf.sprintf "%s: no top-level \"runs\" array" path)
  | Some start -> (
    match find_close text start with
    | None -> Error (Printf.sprintf "%s: unterminated \"runs\" array" path)
    | Some close -> Ok (String.trim (String.sub text start (close - start))))

(* Every SARIF result object carries exactly one "ruleId" (rule-table
   entries use "id"), so counting occurrences counts findings. *)
let count_results inner =
  let key = "\"ruleId\"" in
  let kl = String.length key and n = String.length inner in
  let rec scan i count in_string escaped =
    if i >= n then count
    else if in_string then
      scan (i + 1) count
        (escaped || inner.[i] <> '"')
        (inner.[i] = '\\' && not escaped)
    else if inner.[i] = '"' && i + kl <= n && String.sub inner i kl = key then
      scan (i + kl) (count + 1) false false
    else if inner.[i] = '"' then scan (i + 1) count true false
    else scan (i + 1) count false false
  in
  scan 0 0 false false

let () =
  let out = ref None and inputs = ref [] in
  let rec parse = function
    | [] -> ()
    | "-o" :: path :: rest ->
      out := Some path;
      parse rest
    | ("-o" | "--help" | "-help") :: _ ->
      prerr_endline usage;
      exit 2
    | p :: rest ->
      inputs := p :: !inputs;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let inputs = List.rev !inputs in
  match (!out, inputs) with
  | None, _ | _, [] ->
    prerr_endline usage;
    exit 2
  | Some out, inputs ->
    let runs =
      List.map
        (fun path ->
          match runs_of path with
          | Ok inner -> inner
          | Error msg ->
            Printf.eprintf "sarifmerge: %s\n" msg;
            exit 2)
        inputs
    in
    let runs = List.filter (fun inner -> inner <> "") runs in
    let buffer = Buffer.create 4096 in
    Buffer.add_string buffer "{\n";
    Buffer.add_string buffer
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
    Buffer.add_string buffer "  \"version\": \"2.1.0\",\n";
    Buffer.add_string buffer "  \"runs\": [\n    ";
    Buffer.add_string buffer (String.concat ",\n    " runs);
    Buffer.add_string buffer "\n  ]\n}\n";
    let oc = open_out out in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Buffer.output_buffer oc buffer);
    let findings =
      List.fold_left (fun acc inner -> acc + count_results inner) 0 runs
    in
    Printf.printf "sarifmerge: %d runs, %d findings -> %s\n" (List.length runs)
      findings out;
    if findings > 0 then exit 1
