(* rodunits [--allow FILE] [--fix] [--json] [--sarif PATH] [--stats] PATH...
   rodunits --fixtures DIR

   Dimensional analysis of the load-model arithmetic over the .cmt
   files dune produces (see Analysis.Units for the dimension algebra
   and rule catalogue).  PATHs are scanned recursively for .cmt files —
   under dune that means pointing it at [lib] inside [_build/default],
   where the cmts (.objs/byte), the source copies (for escape hatches)
   and the interface copies (for the dimension markers) all live.

   Exits nonzero when any unsuppressed finding remains, when the
   allowlist has a stale entry, or — in --fixtures mode — when any
   fixture's findings differ from its expect declaration. *)

let usage =
  "usage: rodunits [--allow FILE] [--fix] [--json] [--sarif PATH] [--stats] \
   PATH...\n\
  \       rodunits --fixtures DIR"

let is_cmt path = Filename.check_suffix path ".cmt"

let rec collect acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left (fun acc entry -> collect acc (Filename.concat path entry)) acc
  else if is_cmt path then path :: acc
  else acc

let load_units paths =
  List.fold_left collect [] paths
  |> List.sort_uniq String.compare
  |> List.filter_map Analysis.Scan.unit_of_cmt

let sarif_results diags =
  List.map
    (fun (d : Analysis.Lint.diag) ->
      {
        Analysis.Sarif.rule_id = d.rule;
        level = "error";
        message = d.message;
        file = Some d.file;
        line = Some d.line;
        col = Some d.col;
      })
    diags

let print_json units diags stats suppressed stale =
  let open Printf in
  let esc = Analysis.Sarif.escape in
  printf "{\n  \"schema\": \"rod-rodunits/1\",\n";
  printf "  \"units\": %d,\n" units;
  printf "  \"interfaces_annotated\": %d,\n"
    stats.Analysis.Units.ifaces_annotated;
  printf "  \"vals_annotated\": %d,\n" stats.Analysis.Units.vals_annotated;
  printf "  \"fields_annotated\": %d,\n" stats.Analysis.Units.fields_annotated;
  printf "  \"definitions\": %d,\n" stats.Analysis.Units.defs_walked;
  printf "  \"hatches_used\": %d,\n" stats.Analysis.Units.hatches_used;
  printf "  \"suppressed\": %d,\n" suppressed;
  printf "  \"findings\": [\n";
  List.iteri
    (fun idx (d : Analysis.Lint.diag) ->
      printf
        "    { \"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \
         \"%s\", \"message\": \"%s\" }%s\n"
        (esc d.file) d.line d.col (esc d.rule) (esc d.message)
        (if idx = List.length diags - 1 then "" else ","))
    diags;
  printf "  ],\n";
  printf "  \"stale_allow\": [%s]\n"
    (String.concat ", "
       (List.map (fun (p, r) -> sprintf "\"%s %s\"" (esc p) (esc r)) stale));
  printf "}\n"

(* --- fixture self-test mode -------------------------------------------

   Every fixture declares its expected rule ids in an expect comment; a
   conforming fixture declares none.  Interface-side findings carry the
   .mli path, so they are mapped back to the implementing .ml before
   comparing — a fixture's expectations live in one file. *)

let ml_of_diag_file file =
  if Filename.check_suffix file ".mli" then Filename.chop_suffix file "i"
  else file

let run_fixtures dir =
  let units = load_units [ dir ] in
  if units = [] then begin
    Printf.eprintf "rodunits --fixtures: no .cmt files under %s\n" dir;
    exit 2
  end;
  let diags, _stats = Analysis.Units.check_units units in
  let module SSet = Set.Make (String) in
  let found = Hashtbl.create 16 in
  List.iter
    (fun (d : Analysis.Lint.diag) ->
      let file = ml_of_diag_file d.file in
      let cur =
        Option.value (Hashtbl.find_opt found file) ~default:SSet.empty
      in
      Hashtbl.replace found file (SSet.add d.rule cur))
    diags;
  let failures = ref 0 and checked = ref 0 in
  List.iter
    (fun (u : Analysis.Scan.unit_info) ->
      (* Skip dune's generated wrapper module (no source on disk). *)
      if Sys.file_exists u.source then begin
        incr checked;
        let expected = SSet.of_list (Analysis.Units.expect_of_unit u) in
        let got =
          Option.value (Hashtbl.find_opt found u.source) ~default:SSet.empty
        in
        if SSet.equal expected got then
          Printf.printf "fixture ok: %s%s\n" u.source
            (if SSet.is_empty expected then " (conforming)"
             else
               Printf.sprintf " (rejected: %s)"
                 (String.concat ", " (SSet.elements expected)))
        else begin
          incr failures;
          Printf.printf "fixture FAIL: %s expected {%s} got {%s}\n" u.source
            (String.concat ", " (SSet.elements expected))
            (String.concat ", " (SSet.elements got));
          List.iter
            (fun (d : Analysis.Lint.diag) ->
              if ml_of_diag_file d.file = u.source then
                Printf.printf "  %s\n" (Analysis.Lint.render d))
            diags
        end
      end)
    (List.sort
       (fun (a : Analysis.Scan.unit_info) b -> String.compare a.source b.source)
       units);
  Printf.printf "rodunits fixtures: %d checked, %d failed\n" !checked !failures;
  if !failures > 0 || !checked = 0 then exit 1

let () =
  let allow_file = ref None in
  let fix = ref false in
  let json = ref false in
  let sarif = ref None in
  let stats_flag = ref false in
  let fixtures = ref None in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--allow" :: file :: rest ->
      allow_file := Some file;
      parse rest
    | "--sarif" :: path :: rest ->
      sarif := Some path;
      parse rest
    | "--fixtures" :: dir :: rest ->
      fixtures := Some dir;
      parse rest
    | "--fix" :: rest ->
      fix := true;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--stats" :: rest ->
      stats_flag := true;
      parse rest
    | ("--help" | "-help") :: _ ->
      print_endline usage;
      exit 0
    | ("--allow" | "--sarif" | "--fixtures") :: [] ->
      prerr_endline usage;
      exit 2
    | p :: rest ->
      paths := p :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !fixtures with
  | Some dir -> run_fixtures dir
  | None ->
    if !paths = [] then begin
      prerr_endline usage;
      exit 2
    end;
    let allowlist =
      Analysis.Allowlist.load_or_exit ~tool:"rodunits" !allow_file
    in
    let units = load_units (List.rev !paths) in
    let diags, stats = Analysis.Units.check_units units in
    let kept, suppressed = Analysis.Lint.split_allowed allowlist diags in
    let stale = Analysis.Allowlist.unused allowlist in
    if !fix then
      Analysis.Allowlist.fix_exit ~tool:"rodunits" ~allow_file:!allow_file
        allowlist
        ~rendered_kept:(List.map Analysis.Lint.render kept);
    if !json then
      print_json (List.length units) kept stats (List.length suppressed) stale
    else begin
      List.iter (fun d -> print_endline (Analysis.Lint.render d)) kept;
      Analysis.Allowlist.print_stale allowlist
    end;
    Option.iter
      (fun path ->
        Analysis.Sarif.write ~path ~tool:"rodunits"
          ~rules:Analysis.Units.sarif_rules (sarif_results kept))
      !sarif;
    if !stats_flag && not !json then
      Printf.printf
        "rodunits --stats: %d passes (%s), %d rules, %d units, %d \
         interfaces annotated (%d vals, %d fields), %d definitions, %d \
         findings (%d allow-suppressed, %d hatches used, %d stale allow \
         entries)\n"
        (List.length Analysis.Units.passes)
        (String.concat ", " Analysis.Units.passes)
        (List.length Analysis.Units.rules)
        (List.length units) stats.Analysis.Units.ifaces_annotated
        stats.Analysis.Units.vals_annotated
        stats.Analysis.Units.fields_annotated stats.Analysis.Units.defs_walked
        (List.length kept) (List.length suppressed)
        stats.Analysis.Units.hatches_used (List.length stale);
    if not !json then
      Printf.printf "rodunits: %d units, %d findings (%d suppressed)%s\n"
        (List.length units) (List.length kept) (List.length suppressed)
        (if kept = [] && stale = [] then "" else " — FAILED");
    if kept <> [] || stale <> [] then exit 1
