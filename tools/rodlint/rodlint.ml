(* rodlint [--allow FILE] [--fix] [--sarif PATH] PATH...

   Lints every .ml file under the given paths (recursively; [_build]
   and dot-directories are skipped) and exits nonzero when any
   unsuppressed diagnostic remains, or when the allowlist has gone
   stale (an entry that suppresses nothing).  With --fix the pruned
   allowlist (stale entries dropped) is printed to stdout instead,
   diagnostics moving to stderr.  --sarif additionally writes the kept
   findings as a SARIF 2.1.0 run, feeding the merged rod-analysis.sarif
   artifact alongside the other three analyzers. *)

let usage = "usage: rodlint [--allow FILE] [--fix] [--sarif PATH] PATH..."
let is_ml path = Filename.check_suffix path ".ml"

let rec collect acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (entry <> "" && entry.[0] = '.') then acc
           else collect acc (Filename.concat path entry))
         acc
  else if is_ml path then path :: acc
  else acc

let () =
  let allow_file = ref None in
  let fix = ref false in
  let sarif = ref None in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--allow" :: file :: rest ->
      allow_file := Some file;
      parse rest
    | "--fix" :: rest ->
      fix := true;
      parse rest
    | "--sarif" :: path :: rest ->
      sarif := Some path;
      parse rest
    | ("--allow" | "--sarif") :: [] ->
      prerr_endline usage;
      exit 2
    | ("--help" | "-help") :: _ ->
      print_endline usage;
      exit 0
    | p :: rest ->
      paths := p :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let allowlist = Analysis.Allowlist.load_or_exit ~tool:"rodlint" !allow_file in
  let files = List.fold_left collect [] (List.rev !paths) in
  let files = List.sort_uniq String.compare files in
  let diags = List.concat_map Analysis.Lint.lint_file files in
  let kept, suppressed = Analysis.Lint.split_allowed allowlist diags in
  Option.iter
    (fun path ->
      let results =
        List.map
          (fun (d : Analysis.Lint.diag) ->
            {
              Analysis.Sarif.rule_id = d.rule;
              level = "error";
              message = d.message;
              file = Some d.file;
              line = Some d.line;
              col = Some d.col;
            })
          kept
      in
      Analysis.Sarif.write ~path ~tool:"rodlint" results)
    !sarif;
  if !fix then
    Analysis.Allowlist.fix_exit ~tool:"rodlint" ~allow_file:!allow_file
      allowlist
      ~rendered_kept:(List.map Analysis.Lint.render kept);
  List.iter (fun d -> print_endline (Analysis.Lint.render d)) kept;
  let stale = Analysis.Allowlist.unused allowlist in
  Analysis.Allowlist.print_stale allowlist;
  Printf.printf "rodlint: %d files, %d findings (%d suppressed)%s\n"
    (List.length files) (List.length kept)
    (List.length suppressed)
    (if kept = [] && stale = [] then "" else " — FAILED");
  if kept <> [] || stale <> [] then exit 1
