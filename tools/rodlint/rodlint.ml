(* rodlint [--allow FILE] [--fix] PATH...

   Lints every .ml file under the given paths (recursively; [_build]
   and dot-directories are skipped) and exits nonzero when any
   unsuppressed diagnostic remains, or when the allowlist has gone
   stale (an entry that suppresses nothing).  With --fix the pruned
   allowlist (stale entries dropped) is printed to stdout instead,
   diagnostics moving to stderr. *)

let usage = "usage: rodlint [--allow FILE] [--fix] PATH..."

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let is_ml path = Filename.check_suffix path ".ml"

let rec collect acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (entry <> "" && entry.[0] = '.') then acc
           else collect acc (Filename.concat path entry))
         acc
  else if is_ml path then path :: acc
  else acc

let () =
  let allow_file = ref None in
  let fix = ref false in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--allow" :: file :: rest ->
      allow_file := Some file;
      parse rest
    | "--fix" :: rest ->
      fix := true;
      parse rest
    | "--allow" :: [] ->
      prerr_endline usage;
      exit 2
    | ("--help" | "-help") :: _ ->
      print_endline usage;
      exit 0
    | p :: rest ->
      paths := p :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let allowlist =
    match !allow_file with
    | None -> Analysis.Lint.empty_allowlist
    | Some file -> (
      try Analysis.Lint.load_allowlist file
      with Failure msg ->
        prerr_endline msg;
        exit 2)
  in
  let files = List.fold_left collect [] (List.rev !paths) in
  let files = List.sort_uniq String.compare files in
  let diags = List.concat_map Analysis.Lint.lint_file files in
  let kept, suppressed = Analysis.Lint.split_allowed allowlist diags in
  if !fix then begin
    (match !allow_file with
    | None ->
      prerr_endline "rodlint: --fix requires --allow FILE";
      exit 2
    | Some file ->
      print_string (Analysis.Lint.prune allowlist (read_file file));
      List.iter (fun d -> prerr_endline (Analysis.Lint.render d)) kept;
      List.iter
        (fun (path, rule) ->
          Printf.eprintf "pruned stale allowlist entry: %s %s\n" path rule)
        (Analysis.Lint.unused_entries allowlist));
    exit (if kept <> [] then 1 else 0)
  end;
  List.iter (fun d -> print_endline (Analysis.Lint.render d)) kept;
  let stale = Analysis.Lint.unused_entries allowlist in
  List.iter
    (fun (path, rule) ->
      Printf.printf "stale allowlist entry: %s %s (suppresses nothing)\n" path
        rule)
    stale;
  Printf.printf "rodlint: %d files, %d findings (%d suppressed)%s\n"
    (List.length files) (List.length kept)
    (List.length suppressed)
    (if kept = [] && stale = [] then "" else " — FAILED");
  if kept <> [] || stale <> [] then exit 1
