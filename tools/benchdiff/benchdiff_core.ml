(* The parsing and matching core of benchdiff, shared with the bench
   harness (bench/main.ml uses [rung_matches] for its --only filter) and
   unit-tested in test/test_benchdiff.ml.

   The parser is deliberately shape-bound to the writer (fixed
   indentation, one entry per line) rather than a general JSON reader —
   the two live in the same repo and move together. *)

let threshold = 1.25
let min_r_square = 0.9

type record = {
  mutable rev : string;
  mutable quick : string;
  mutable domains : string;
  (* (name, ns_per_run, r_square), reversed while parsing *)
  mutable results : (string * float * float) list;
}

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Rung names are '/'-separated paths ("rod/place/ROD-m200").  A needle
   matches when its segments line up with consecutive whole segments of
   the name — so "place/ROD-m200" can never select "place/ROD-m2000",
   which plain substring matching did.  A needle ending in '/' is a
   family filter ("place/" selects every placement rung); without the
   trailing slash the needle's last segment must be the name's last
   segment (it names one rung, not a prefix of one). *)
let rung_matches ~needle name =
  let segments s =
    List.filter (fun seg -> seg <> "") (String.split_on_char '/' s)
  in
  let family =
    String.length needle > 0 && needle.[String.length needle - 1] = '/'
  in
  let ns = segments needle in
  let rec eat ns hs =
    match (ns, hs) with
    | [], rest -> family || rest = []
    | _ :: _, [] -> false
    | n :: ntl, h :: htl -> n = h && eat ntl htl
  in
  let rec at hs =
    match hs with
    | [] -> false
    | _ :: tl -> eat ns hs || at tl
  in
  ns <> [] && at (segments name)

(* The placement-suite gate: which entries a regression fails on. *)
let judged name =
  rung_matches ~needle:"place/" name
  || rung_matches ~needle:"controller/" name

(* Record bodies use 6-space indentation for their own fields; the
   nested obs snapshot is re-indented to 8+ spaces, so matching exact
   prefixes below cannot confuse the two. *)
let parse content =
  let records = ref [] in
  let current = ref None in
  let in_results = ref false in
  let header field line =
    (* |      "field": value,| -> |value| *)
    let prefix = Printf.sprintf "      %S: " field in
    if starts_with prefix line then begin
      let v = String.sub line (String.length prefix)
          (String.length line - String.length prefix) in
      let v = String.trim v in
      let v =
        if String.length v > 0 && v.[String.length v - 1] = ',' then
          String.sub v 0 (String.length v - 1)
        else v
      in
      Some v
    end
    else None
  in
  let entry record line =
    (* |        "name": { "ns_per_run": 1.23e+06, "r_square": 0.99 }…| *)
    match
      Scanf.sscanf (String.trim line)
        "%S: { \"ns_per_run\": %s@, \"r_square\": %s@ "
        (fun name ns r2 -> (name, ns, r2))
    with
    | name, ns, r2 ->
      (match float_of_string_opt ns with
      | Some ns ->
        (* "null" r^2 parses to none -> treat as a failed fit (nan). *)
        let r2 =
          match float_of_string_opt r2 with Some r -> r | None -> nan
        in
        record.results <- (name, ns, r2) :: record.results
      | None -> () (* "null": the run produced no estimate *))
    | exception Scanf.Scan_failure _ | exception End_of_file -> ()
  in
  List.iter
    (fun line ->
      if line = "    {" then begin
        (match !current with Some r -> records := r :: !records | None -> ());
        current :=
          Some { rev = "?"; quick = "?"; domains = "?"; results = [] };
        in_results := false
      end
      else
        match !current with
        | None -> ()
        | Some r ->
          if !in_results then
            if starts_with "        \"" line then entry r line
            else in_results := false
          else if line = "      \"results\": {" then in_results := true
          else begin
            (match header "rev" line with Some v -> r.rev <- v | None -> ());
            (match header "quick" line with
            | Some v -> r.quick <- v
            | None -> ());
            match header "domains" line with
            | Some v -> r.domains <- v
            | None -> ()
          end)
    (String.split_on_char '\n' content);
  (match !current with Some r -> records := r :: !records | None -> ());
  (* !records is newest-first (built by prepending); one rev_map both
     restores file order (oldest first) and un-reverses the entries. *)
  List.rev_map
    (fun r ->
      r.results <- List.rev r.results;
      r)
    !records

let pretty ns =
  if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
  else Printf.sprintf "%.1f ns" ns
