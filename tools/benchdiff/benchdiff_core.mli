(** Parsing and rung matching shared by the benchdiff gate and the
    bench harness's [--only] filter. *)

val threshold : float
(** Slowdown ratio above which a judged entry is a regression. *)

val min_r_square : float
(** OLS fits below this on either side are shown but not judged. *)

type record = {
  mutable rev : string;
  mutable quick : string;
  mutable domains : string;
  mutable results : (string * float * float) list;
      (** (name, ns_per_run, r_square), in file order. *)
}

val parse : string -> record list
(** Records of a rod-microbench/2 accumulator, oldest first. *)

val rung_matches : needle:string -> string -> bool
(** Whether a '/'-separated needle selects a rung name: the needle's
    segments must match consecutive whole segments of the name, ending
    at the name's end — so ["place/ROD-m200"] never selects
    ["rod/place/ROD-m2000"].  A needle with a trailing slash is a
    family filter: ["place/"] selects every name containing a
    ["place"] segment.  The empty needle selects nothing. *)

val judged : string -> bool
(** Whether the regression gate applies to an entry ([place/] and
    [controller/] families). *)

val pretty : float -> string
(** Human-readable ns/run. *)
