(* benchdiff: compare the newest BENCH_rod.json record against the
   previous one and fail on placement-suite regressions.

   The file is the rod-microbench/2 accumulator written by bench/main.ml,
   one record per run.  This reads the last two records, lines up their
   "place/" and "controller/" entries and exits 1 when any is more than
   [threshold] slower than before.  Entries whose OLS fit is poor on
   either side (r^2 < [min_r_square]) are shown but not judged — a bad
   fit means the ns/run estimate itself is noise, and that skip is what
   makes the gate safe to enforce: `make check` runs the quick ladder
   and then this diff, so a real slowdown in a placement or replanner
   rung fails tier-1, while a noisy estimate merely prints.

   The parser is deliberately shape-bound to the writer (fixed
   indentation, one entry per line) rather than a general JSON reader —
   the two live in the same repo and move together. *)

let threshold = 1.25
let min_r_square = 0.9

type record = {
  mutable rev : string;
  mutable quick : string;
  mutable domains : string;
  (* (name, ns_per_run, r_square), reversed while parsing *)
  mutable results : (string * float * float) list;
}

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Record bodies use 6-space indentation for their own fields; the
   nested obs snapshot is re-indented to 8+ spaces, so matching exact
   prefixes below cannot confuse the two. *)
let parse content =
  let records = ref [] in
  let current = ref None in
  let in_results = ref false in
  let header field line =
    (* |      "field": value,| -> |value| *)
    let prefix = Printf.sprintf "      %S: " field in
    if starts_with prefix line then begin
      let v = String.sub line (String.length prefix)
          (String.length line - String.length prefix) in
      let v = String.trim v in
      let v =
        if String.length v > 0 && v.[String.length v - 1] = ',' then
          String.sub v 0 (String.length v - 1)
        else v
      in
      Some v
    end
    else None
  in
  let entry record line =
    (* |        "name": { "ns_per_run": 1.23e+06, "r_square": 0.99 }…| *)
    match
      Scanf.sscanf (String.trim line)
        "%S: { \"ns_per_run\": %s@, \"r_square\": %s@ "
        (fun name ns r2 -> (name, ns, r2))
    with
    | name, ns, r2 ->
      (match float_of_string_opt ns with
      | Some ns ->
        (* "null" r^2 parses to none -> treat as a failed fit (nan). *)
        let r2 =
          match float_of_string_opt r2 with Some r -> r | None -> nan
        in
        record.results <- (name, ns, r2) :: record.results
      | None -> () (* "null": the run produced no estimate *))
    | exception Scanf.Scan_failure _ | exception End_of_file -> ()
  in
  List.iter
    (fun line ->
      if line = "    {" then begin
        (match !current with Some r -> records := r :: !records | None -> ());
        current :=
          Some { rev = "?"; quick = "?"; domains = "?"; results = [] };
        in_results := false
      end
      else
        match !current with
        | None -> ()
        | Some r ->
          if !in_results then
            if starts_with "        \"" line then entry r line
            else in_results := false
          else if line = "      \"results\": {" then in_results := true
          else begin
            (match header "rev" line with Some v -> r.rev <- v | None -> ());
            (match header "quick" line with
            | Some v -> r.quick <- v
            | None -> ());
            match header "domains" line with
            | Some v -> r.domains <- v
            | None -> ()
          end)
    (String.split_on_char '\n' content);
  (match !current with Some r -> records := r :: !records | None -> ());
  (* !records is newest-first (built by prepending); one rev_map both
     restores file order (oldest first) and un-reverses the entries. *)
  List.rev_map
    (fun r ->
      r.results <- List.rev r.results;
      r)
    !records

let pretty ns =
  if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
  else Printf.sprintf "%.1f ns" ns

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_rod.json"
  in
  if not (Sys.file_exists path) then begin
    Printf.printf "benchdiff: %s not found, nothing to compare\n" path;
    exit 0
  end;
  let content =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match List.rev (parse content) with
  | [] | [ _ ] ->
    Printf.printf "benchdiff: %s has fewer than two records, nothing to compare\n"
      path;
    exit 0
  | newest :: previous :: _ ->
    Printf.printf "benchdiff: %s (rev %s) vs %s (rev %s)\n" path newest.rev
      path previous.rev;
    if newest.domains <> previous.domains || newest.quick <> previous.quick
    then
      Printf.printf
        "benchdiff: note: setups differ (domains %s vs %s, quick %s vs %s)\n"
        newest.domains previous.domains newest.quick previous.quick;
    let regressions = ref 0 in
    let compared = ref 0 in
    List.iter
      (fun (name, ns, r2) ->
        let judged =
          let mem sub =
            let sl = String.length sub in
            let rec scan i =
              i + sl <= String.length name
              && (String.sub name i sl = sub || scan (i + 1))
            in
            scan 0
          in
          mem "place/" || mem "controller/"
        in
        if judged then
          let prior =
            List.find_opt (fun (n, _, _) -> n = name) previous.results
          in
          match prior with
          | None ->
            Printf.printf "  %-34s %14s      (new entry)\n" name (pretty ns)
          | Some (_, old, old_r2) when old > 0. ->
            let ratio = ns /. old in
            if r2 >= min_r_square && old_r2 >= min_r_square then begin
              incr compared;
              let flag = ratio > threshold in
              if flag then incr regressions;
              Printf.printf "  %-34s %14s %5.2fx%s\n" name (pretty ns) ratio
                (if flag then "  REGRESSION" else "")
            end
            else
              Printf.printf "  %-34s %14s %5.2fx  (noisy fit, not judged)\n"
                name (pretty ns) ratio
          | Some _ -> ())
      newest.results;
    if !compared = 0 then
      Printf.printf "benchdiff: no place/* or controller/* entries in common\n";
    if !regressions > 0 then begin
      Printf.printf "benchdiff: %d entr%s regressed more than %.0f%%\n"
        !regressions
        (if !regressions = 1 then "y" else "ies")
        ((threshold -. 1.) *. 100.);
      exit 1
    end
    else Printf.printf "benchdiff: ok\n"
