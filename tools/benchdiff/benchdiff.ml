(* benchdiff: compare the newest BENCH_rod.json record against the
   previous one and fail on placement-suite regressions.

   The file is the rod-microbench/2 accumulator written by bench/main.ml,
   one record per run.  This reads the last two records, lines up their
   "place/" and "controller/" entries and exits 1 when any is more than
   [Benchdiff_core.threshold] slower than before.  Entries whose OLS fit
   is poor on either side (r^2 < [min_r_square]) are shown but not
   judged — a bad fit means the ns/run estimate itself is noise, and
   that skip is what makes the gate safe to enforce: `make check` runs
   the quick ladder and then this diff, so a real slowdown in a
   placement or replanner rung fails tier-1, while a noisy estimate
   merely prints. *)

open Benchdiff_core

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_rod.json"
  in
  if not (Sys.file_exists path) then begin
    Printf.printf "benchdiff: %s not found, nothing to compare\n" path;
    exit 0
  end;
  let content =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match List.rev (parse content) with
  | [] | [ _ ] ->
    Printf.printf "benchdiff: %s has fewer than two records, nothing to compare\n"
      path;
    exit 0
  | newest :: previous :: _ ->
    Printf.printf "benchdiff: %s (rev %s) vs %s (rev %s)\n" path newest.rev
      path previous.rev;
    if newest.domains <> previous.domains || newest.quick <> previous.quick
    then
      Printf.printf
        "benchdiff: note: setups differ (domains %s vs %s, quick %s vs %s)\n"
        newest.domains previous.domains newest.quick previous.quick;
    let regressions = ref 0 in
    let compared = ref 0 in
    List.iter
      (fun (name, ns, r2) ->
        if judged name then
          let prior =
            List.find_opt (fun (n, _, _) -> n = name) previous.results
          in
          match prior with
          | None ->
            Printf.printf "  %-34s %14s      (new entry)\n" name (pretty ns)
          | Some (_, old, old_r2) when old > 0. ->
            let ratio = ns /. old in
            if r2 >= min_r_square && old_r2 >= min_r_square then begin
              incr compared;
              let flag = ratio > threshold in
              if flag then incr regressions;
              Printf.printf "  %-34s %14s %5.2fx%s\n" name (pretty ns) ratio
                (if flag then "  REGRESSION" else "")
            end
            else
              Printf.printf "  %-34s %14s %5.2fx  (noisy fit, not judged)\n"
                name (pretty ns) ratio
          | Some _ -> ())
      newest.results;
    if !compared = 0 then
      Printf.printf "benchdiff: no place/* or controller/* entries in common\n";
    if !regressions > 0 then begin
      Printf.printf "benchdiff: %d entr%s regressed more than %.0f%%\n"
        !regressions
        (if !regressions = 1 then "y" else "ies")
        ((threshold -. 1.) *. 100.);
      exit 1
    end
    else Printf.printf "benchdiff: ok\n"
