(* rodscan [--allow FILE] [--json] [--sarif PATH] [--stats] PATH...
   rodscan --fixtures DIR

   Typedtree-level analysis over the .cmt files dune produces (see
   Analysis.Scan for the pass and rule catalogue).  PATHs are scanned
   recursively for .cmt files — under dune that means pointing it at
   [lib] inside [_build/default], where both the cmts (.objs/byte) and
   the source copies (for markers and escape hatches) live.

   Exits nonzero when any unsuppressed finding remains, when the
   allowlist has a stale entry, or — in --fixtures mode — when any
   fixture's findings differ from its (* rodscan-expect: ... *)
   declaration. *)

let usage =
  "usage: rodscan [--allow FILE] [--fix] [--json] [--sarif PATH] [--stats] \
   PATH...\n\
  \       rodscan --fixtures DIR"

let is_cmt path = Filename.check_suffix path ".cmt"

let rec collect acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left (fun acc entry -> collect acc (Filename.concat path entry)) acc
  else if is_cmt path then path :: acc
  else acc

let load_units paths =
  List.fold_left collect [] paths
  |> List.sort_uniq String.compare
  |> List.filter_map Analysis.Scan.unit_of_cmt

let sarif_results diags =
  List.map
    (fun (d : Analysis.Lint.diag) ->
      {
        Analysis.Sarif.rule_id = d.rule;
        level = "error";
        message = d.message;
        file = Some d.file;
        line = Some d.line;
        col = Some d.col;
      })
    diags

let print_json diags stats suppressed stale =
  let open Printf in
  let esc = Analysis.Sarif.escape in
  printf "{\n  \"schema\": \"rod-rodscan/1\",\n";
  printf "  \"units\": %d,\n" stats.Analysis.Scan.units_scanned;
  printf "  \"definitions\": %d,\n" stats.Analysis.Scan.defs_analyzed;
  printf "  \"suppressed\": %d,\n" suppressed;
  printf "  \"findings\": [\n";
  List.iteri
    (fun idx (d : Analysis.Lint.diag) ->
      printf
        "    { \"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \
         \"%s\", \"message\": \"%s\" }%s\n"
        (esc d.file) d.line d.col (esc d.rule) (esc d.message)
        (if idx = List.length diags - 1 then "" else ","))
    diags;
  printf "  ],\n";
  printf "  \"stale_allow\": [%s]\n"
    (String.concat ", "
       (List.map (fun (p, r) -> sprintf "\"%s %s\"" (esc p) (esc r)) stale));
  printf "}\n"

(* --- fixture self-test mode -------------------------------------------

   Every fixture declares its expected rule ids in a
   (* rodscan-expect: rule [rule...] *) comment; a conforming fixture
   declares none.  The whole directory is scanned as one unit set so
   interprocedural fixtures (a Random leak crossing files) work. *)

let run_fixtures dir =
  let units = load_units [ dir ] in
  if units = [] then begin
    Printf.eprintf "rodscan --fixtures: no .cmt files under %s\n" dir;
    exit 2
  end;
  let diags, _stats = Analysis.Scan.scan_units units in
  let module SSet = Set.Make (String) in
  let found = Hashtbl.create 16 in
  List.iter
    (fun (d : Analysis.Lint.diag) ->
      let cur =
        Option.value (Hashtbl.find_opt found d.file) ~default:SSet.empty
      in
      Hashtbl.replace found d.file (SSet.add d.rule cur))
    diags;
  let failures = ref 0 and checked = ref 0 in
  List.iter
    (fun (u : Analysis.Scan.unit_info) ->
      (* Skip dune's generated wrapper module (no source on disk). *)
      if Sys.file_exists u.source then begin
        incr checked;
        let expected = SSet.of_list u.expect in
        let got =
          Option.value (Hashtbl.find_opt found u.source) ~default:SSet.empty
        in
        if SSet.equal expected got then
          Printf.printf "fixture ok: %s%s\n" u.source
            (if SSet.is_empty expected then " (conforming)"
             else
               Printf.sprintf " (rejected: %s)"
                 (String.concat ", " (SSet.elements expected)))
        else begin
          incr failures;
          Printf.printf "fixture FAIL: %s expected {%s} got {%s}\n" u.source
            (String.concat ", " (SSet.elements expected))
            (String.concat ", " (SSet.elements got));
          List.iter
            (fun (d : Analysis.Lint.diag) ->
              if d.file = u.source then
                Printf.printf "  %s\n" (Analysis.Lint.render d))
            diags
        end
      end)
    (List.sort
       (fun (a : Analysis.Scan.unit_info) b -> String.compare a.source b.source)
       units);
  Printf.printf "rodscan fixtures: %d checked, %d failed\n" !checked !failures;
  if !failures > 0 || !checked = 0 then exit 1

let () =
  let allow_file = ref None in
  let fix = ref false in
  let json = ref false in
  let sarif = ref None in
  let stats_flag = ref false in
  let fixtures = ref None in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--allow" :: file :: rest ->
      allow_file := Some file;
      parse rest
    | "--sarif" :: path :: rest ->
      sarif := Some path;
      parse rest
    | "--fixtures" :: dir :: rest ->
      fixtures := Some dir;
      parse rest
    | "--fix" :: rest ->
      fix := true;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--stats" :: rest ->
      stats_flag := true;
      parse rest
    | ("--help" | "-help") :: _ ->
      print_endline usage;
      exit 0
    | ("--allow" | "--sarif" | "--fixtures") :: [] ->
      prerr_endline usage;
      exit 2
    | p :: rest ->
      paths := p :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !fixtures with
  | Some dir -> run_fixtures dir
  | None ->
    if !paths = [] then begin
      prerr_endline usage;
      exit 2
    end;
    let allowlist =
      Analysis.Allowlist.load_or_exit ~tool:"rodscan" !allow_file
    in
    let units = load_units (List.rev !paths) in
    let diags, stats = Analysis.Scan.scan_units units in
    let kept, suppressed = Analysis.Lint.split_allowed allowlist diags in
    let stale = Analysis.Allowlist.unused allowlist in
    if !fix then
      Analysis.Allowlist.fix_exit ~tool:"rodscan" ~allow_file:!allow_file
        allowlist
        ~rendered_kept:(List.map Analysis.Lint.render kept);
    if !json then print_json kept stats (List.length suppressed) stale
    else begin
      List.iter (fun d -> print_endline (Analysis.Lint.render d)) kept;
      Analysis.Allowlist.print_stale allowlist
    end;
    Option.iter
      (fun path ->
        Analysis.Sarif.write ~path ~tool:"rodscan"
          ~rules:Analysis.Scan.sarif_rules (sarif_results kept))
      !sarif;
    if !stats_flag && not !json then
      Printf.printf
        "rodscan --stats: %d passes (%s), %d rules, %d units, %d \
         definitions, %d findings (%d allow-suppressed, %d hatch-suppressed, \
         %d stale allow entries)\n"
        (List.length Analysis.Scan.passes)
        (String.concat ", " Analysis.Scan.passes)
        (List.length Analysis.Scan.rules)
        stats.Analysis.Scan.units_scanned stats.Analysis.Scan.defs_analyzed
        (List.length kept) (List.length suppressed)
        stats.Analysis.Scan.hatches_used (List.length stale);
    if not !json then
      Printf.printf "rodscan: %d units, %d findings (%d suppressed)%s\n"
        stats.Analysis.Scan.units_scanned (List.length kept)
        (List.length suppressed)
        (if kept = [] && stale = [] then "" else " — FAILED");
    if kept <> [] || stale <> [] then exit 1
